"""Unit tests for the numerical guards (GuardedMonitor + solve brackets).

The guard rides the SolverMonitor event stream, so most cases are driven
with synthetic event sequences -- no solver needed to prove each
diagnosis fires at exactly the configured threshold.
"""

import math
import time

import numpy as np
import pytest

from repro.markov import RecordingMonitor
from repro.markov.conformance import birth_death_fixture, zero_row_fixture
from repro.resilience import (
    BudgetExceeded,
    GuardPolicy,
    GuardedMonitor,
    NumericalContamination,
    SolverDiverged,
    SolverStagnated,
    check_operator,
    check_result,
    guarded_solve,
)


def feed(monitor, residuals, tol=1e-10):
    monitor.solve_started("synthetic", 8, tol)
    for i, r in enumerate(residuals, start=1):
        monitor.iteration_finished(i, r, elapsed=0.001 * i)


class TestGuardedMonitor:
    def test_healthy_stream_passes(self):
        mon = GuardedMonitor(GuardPolicy(stagnation_window=10))
        feed(mon, [10.0 / (i + 1) for i in range(100)])

    def test_nan_residual_is_contamination(self):
        mon = GuardedMonitor()
        with pytest.raises(NumericalContamination) as excinfo:
            feed(mon, [1.0, 0.5, float("nan")])
        assert excinfo.value.method == "synthetic"
        assert excinfo.value.iteration == 3

    def test_inf_residual_is_contamination(self):
        mon = GuardedMonitor()
        with pytest.raises(NumericalContamination):
            feed(mon, [1.0, float("inf")])

    def test_divergence_after_grace(self):
        pol = GuardPolicy(divergence_factor=100.0, divergence_grace=5)
        mon = GuardedMonitor(pol)
        # 10 shrinking residuals arm the guard, then a 1000x blow-up.
        with pytest.raises(SolverDiverged) as excinfo:
            feed(mon, [1.0 / (i + 1) for i in range(10)] + [1000.0])
        assert "diverging" in str(excinfo.value)

    def test_divergence_grace_shields_early_wobble(self):
        pol = GuardPolicy(divergence_factor=10.0, divergence_grace=10)
        mon = GuardedMonitor(pol)
        # A 100x wobble inside the grace window must be tolerated.
        feed(mon, [1.0, 0.01, 1.0, 0.5, 0.1])

    def test_stagnation_fires_at_window(self):
        pol = GuardPolicy(stagnation_window=20, stagnation_rtol=1e-3)
        mon = GuardedMonitor(pol)
        with pytest.raises(SolverStagnated) as excinfo:
            feed(mon, [0.5] * 50)
        # Fires at the first iteration with a full window behind it.
        assert excinfo.value.iteration == 21

    def test_slow_but_real_progress_is_not_stagnation(self):
        pol = GuardPolicy(stagnation_window=20, stagnation_rtol=1e-3)
        mon = GuardedMonitor(pol)
        # 0.5% decay per iteration: slow, but well above the 0.1% bar
        # accumulated over 20 iterations.
        feed(mon, [0.5 * 0.995 ** i for i in range(200)])

    def test_stagnation_not_raised_below_tolerance(self):
        pol = GuardPolicy(stagnation_window=5)
        mon = GuardedMonitor(pol)
        feed(mon, [1e-14] * 50, tol=1e-10)  # flat but already converged

    def test_wall_clock_budget(self):
        mon = GuardedMonitor(GuardPolicy(wall_clock_budget=0.5))
        mon.solve_started("synthetic", 8, 1e-10)
        mon.iteration_finished(1, 0.1, elapsed=0.1)
        with pytest.raises(BudgetExceeded) as excinfo:
            mon.iteration_finished(2, 0.05, elapsed=1.0)
        assert excinfo.value.budget == "wall_clock"
        assert excinfo.value.observed == pytest.approx(1.0)

    def test_inner_monitor_sees_fatal_event(self):
        # Telemetry is teed BEFORE the guard raises, so the trail ends
        # with the event that triggered the diagnosis.
        rec = RecordingMonitor()
        mon = GuardedMonitor(inner=rec)
        with pytest.raises(NumericalContamination):
            feed(mon, [1.0, float("nan")])
        assert len(rec.events) == 2
        assert math.isnan(rec.events[-1].residual)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            GuardPolicy(stagnation_window=-1)
        with pytest.raises(ValueError):
            GuardPolicy(stagnation_rtol=1.5)
        with pytest.raises(ValueError):
            GuardPolicy(wall_clock_budget=0.0)


class TestSolveBrackets:
    def test_check_operator_accepts_stochastic(self):
        from repro.markov.linop import as_operator

        check_operator(as_operator(birth_death_fixture(16)))

    def test_check_operator_rejects_zero_row(self):
        from repro.markov.linop import as_operator

        with pytest.raises(NumericalContamination, match="zero row"):
            check_operator(as_operator(zero_row_fixture(10)))

    def test_check_result_rejects_nonfinite(self):
        from repro.markov.solvers import StationaryResult

        bad = StationaryResult(
            distribution=np.array([0.5, float("nan"), 0.5]),
            iterations=3, residual=1e-12, converged=True, method="x",
        )
        with pytest.raises(NumericalContamination, match="non-finite"):
            check_result(bad)

    def test_check_result_rejects_negative_mass(self):
        from repro.markov.solvers import StationaryResult

        bad = StationaryResult(
            distribution=np.array([1.1, -0.1, 0.0]),
            iterations=3, residual=1e-12, converged=True, method="x",
        )
        with pytest.raises(NumericalContamination, match="negative"):
            check_result(bad)

    def test_check_result_unconverged_is_budget_exceeded(self):
        from repro.markov.solvers import StationaryResult

        bad = StationaryResult(
            distribution=np.full(4, 0.25),
            iterations=500, residual=1e-3, converged=False, method="x",
        )
        with pytest.raises(BudgetExceeded) as excinfo:
            check_result(bad)
        assert excinfo.value.budget == "iterations"


class TestGuardedSolve:
    def test_happy_path_matches_plain_solve(self):
        from repro.markov.stationary import stationary_distribution

        chain = birth_death_fixture(32)
        guarded = guarded_solve(chain, method="power", tol=1e-11)
        plain = stationary_distribution(chain, method="power", tol=1e-11)
        np.testing.assert_allclose(
            guarded.distribution, plain.distribution, atol=1e-12
        )
        assert guarded.converged

    def test_max_iter_exhaustion_is_typed(self):
        chain = birth_death_fixture(64)
        with pytest.raises(BudgetExceeded) as excinfo:
            guarded_solve(chain, method="power", tol=1e-12, max_iter=5)
        assert excinfo.value.budget == "iterations"

    def test_nonfinite_iterate_detected_immediately(self):
        # Satellite check: iterate_fixed_point itself must catch a
        # non-finite iterate the sweep it appears, not at max_iter.
        from repro.markov.solvers.result import iterate_fixed_point

        def step(x):
            y = x.copy()
            y[0] = float("nan")
            return y

        with pytest.raises(NumericalContamination) as excinfo:
            iterate_fixed_point(
                4,
                step,
                lambda x: 1.0,
                method="unit-test",
                tol=1e-10,
                max_iter=10_000,
                x0=np.full(4, 0.25),
            )
        assert excinfo.value.iteration == 1
        assert "state 0" in str(excinfo.value)
