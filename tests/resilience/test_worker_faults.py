"""Worker-chaos battery wiring: suite selection and recovery grading.

The expensive scenarios themselves (SIGKILL mid-point, hang, corrupt
payload, pool-start failure) are exercised at the scheduler level in
``tests/exec/test_executor.py`` with a cheap toy runner; here we run the
two cheapest *real-sweep* scenarios end to end through the battery and
check the ``--suite`` plumbing that ``repro faults`` exposes.
"""

import pytest

from repro.resilience.faults import FAULT_SCENARIOS, run_fault_suite
from repro.resilience.worker_faults import WORKER_FAULT_SCENARIOS


class TestSuiteSelection:
    def test_core_suite_excludes_worker_scenarios(self):
        outcomes = run_fault_suite(
            "quick", names=["nan_matvec"], suite="core"
        )
        assert [o.name for o in outcomes] == ["nan_matvec"]
        with pytest.raises(ValueError, match="unknown fault scenario"):
            run_fault_suite("quick", names=["worker_sigkill"], suite="core")

    def test_workers_suite_excludes_core_scenarios(self):
        with pytest.raises(ValueError, match="unknown fault scenario"):
            run_fault_suite("quick", names=["nan_matvec"], suite="workers")

    def test_all_suite_spans_both(self):
        names = set(FAULT_SCENARIOS) | set(WORKER_FAULT_SCENARIOS)
        outcomes = run_fault_suite(
            "quick", names=["nan_matvec", "pool_start_failure"], suite="all"
        )
        assert {o.name for o in outcomes} <= names
        assert len(outcomes) == 2

    def test_worker_scenario_catalog(self):
        assert set(WORKER_FAULT_SCENARIOS) == {
            "worker_sigkill",
            "worker_hang",
            "worker_corrupt_payload",
            "pool_start_failure",
        }


class TestBatteryRecovery:
    def test_sigkill_scenario_recovers_exactly_once(self):
        [outcome] = run_fault_suite(
            "quick", names=["worker_sigkill"], suite="workers"
        )
        assert outcome.caught, outcome.message
        assert outcome.detail["exec_stats"]["workers_lost"] >= 1
        assert "recovered" in outcome.message

    def test_pool_start_failure_degrades_to_serial(self):
        [outcome] = run_fault_suite(
            "quick", names=["pool_start_failure"], suite="workers"
        )
        assert outcome.caught, outcome.message
        assert outcome.detail["exec_stats"]["mode"] == "serial-fallback"
