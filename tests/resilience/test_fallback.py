"""Fallback escalation and solver checkpoint/resume acceptance tests."""

import numpy as np
import pytest

from repro.markov.conformance import birth_death_fixture
from repro.resilience import (
    BudgetExceeded,
    CheckpointMismatch,
    FallbackExhausted,
    FallbackPolicy,
    FallbackStep,
    GuardPolicy,
    resilient_stationary,
)
from repro.resilience.faults import StallingOperator


class TestPolicyConstruction:
    def test_default_chain_order(self):
        chain = birth_death_fixture(32)
        policy = FallbackPolicy.from_registry(chain)
        assert [s.method for s in policy.steps] == [
            "multigrid", "krylov", "power", "direct",
        ]

    def test_first_method_pins_the_head(self):
        chain = birth_death_fixture(32)
        policy = FallbackPolicy.from_registry(
            chain, first_method="power", first_kwargs={"damping": 0.5}
        )
        assert policy.steps[0].method == "power"
        assert policy.steps[0].kwargs == {"damping": 0.5}
        # power appears once: the pinned head, not again from the registry.
        assert [s.method for s in policy.steps].count("power") == 1

    def test_matrix_free_operator_drops_direct(self):
        class MatrixFreeView:
            """Operator protocol surface without to_csr."""

            def __init__(self, chain):
                self._op = chain.P

            @property
            def shape(self):
                return self._op.shape

            def matvec(self, x):
                return self._op @ x

            def rmatvec(self, x):
                return self._op.T @ x

            def diagonal(self):
                return self._op.diagonal()

            def row_sums(self):
                return np.asarray(self._op.sum(axis=1)).ravel()

        policy = FallbackPolicy.from_registry(
            MatrixFreeView(birth_death_fixture(32))
        )
        assert "direct" not in [s.method for s in policy.steps]

    def test_empty_policy_rejected(self):
        with pytest.raises(ValueError):
            FallbackPolicy(steps=())


class TestEscalation:
    def test_happy_path_single_attempt(self):
        chain = birth_death_fixture(64)
        outcome = resilient_stationary(chain, tol=1e-10)
        assert outcome.escalations == 0
        assert outcome.attempts[0].status == "converged"
        assert outcome.result.converged

    def test_failing_head_escalates_to_next_method(self):
        # The first step runs out of iterations; the chain must complete
        # on the next method and the trail must show both attempts.
        chain = birth_death_fixture(32)
        policy = FallbackPolicy(
            steps=(
                FallbackStep("power", max_iter=3),  # too few: fails
                FallbackStep("krylov", max_iter=500),
            ),
            retry_perturbed=False,
        )
        outcome = resilient_stationary(chain, policy, tol=1e-10)
        assert outcome.escalations == 1
        assert [a.status for a in outcome.attempts] == ["failed", "converged"]
        assert outcome.attempts[0].error_type == "BudgetExceeded"
        assert outcome.method.startswith("krylov")

    def test_fully_stalled_chain_raises_with_trail(self):
        # Every method stalls on the corrupted operator: the driver must
        # give up with the full structured attempt trail.
        stalling = StallingOperator(birth_death_fixture(32), after=0)
        policy = FallbackPolicy(
            steps=(
                FallbackStep("power", max_iter=200),
                FallbackStep("krylov", max_iter=500),
            ),
            guard=GuardPolicy(stagnation_window=10),
            retry_perturbed=False,
        )
        with pytest.raises(FallbackExhausted) as excinfo:
            resilient_stationary(stalling, policy, tol=1e-10)
        assert len(excinfo.value.attempts) >= 2
        assert {a["method"] for a in excinfo.value.attempts} >= {"power"}

    def test_stagnation_earns_perturbed_retry(self):
        chain = birth_death_fixture(32)
        stalling = StallingOperator(chain, after=0)
        policy = FallbackPolicy(
            steps=(FallbackStep("power", max_iter=200),),
            guard=GuardPolicy(stagnation_window=10),
            retry_perturbed=True,
        )
        with pytest.raises(FallbackExhausted) as excinfo:
            resilient_stationary(stalling, policy, tol=1e-10)
        events = excinfo.value.attempts
        assert len(events) == 2
        assert events[0]["perturbed_x0"] is False
        assert events[1]["perturbed_x0"] is True

    def test_memory_budget_aborts_the_chain(self):
        chain = birth_death_fixture(16)
        policy = FallbackPolicy(
            steps=(FallbackStep("power"), FallbackStep("krylov")),
            memory_budget_bytes=1,  # any real process exceeds this
        )
        with pytest.raises(BudgetExceeded) as excinfo:
            resilient_stationary(chain, policy, tol=1e-10)
        assert excinfo.value.budget == "memory"

    def test_events_are_manifest_ready(self):
        chain = birth_death_fixture(32)
        outcome = resilient_stationary(chain, tol=1e-10)
        events = outcome.events()
        assert events[0]["event"] == "solver_attempt"
        assert events[0]["status"] == "converged"
        import json

        json.dumps(events)  # structured events must be JSON-serializable


class TestCheckpointResume:
    def test_interrupted_solve_resumes_to_same_vector(self, tmp_path):
        # Acceptance: kill a solve mid-flight (tiny per-attempt iteration
        # budget), then resume from its checkpoint and converge; the
        # resumed vector must match an uninterrupted solve to rtol 1e-10.
        chain = birth_death_fixture(96, up=0.3, down=0.32)
        path = str(tmp_path / "solve.ckpt.json")
        interrupted = FallbackPolicy(
            steps=(FallbackStep("power", max_iter=40),),
            retry_perturbed=False,
        )
        with pytest.raises(FallbackExhausted):
            resilient_stationary(
                chain, interrupted, tol=1e-12,
                checkpoint_path=path, checkpoint_interval=10,
            )

        full = FallbackPolicy(steps=(FallbackStep("power", max_iter=100_000),))
        resumed = resilient_stationary(
            chain, full, tol=1e-12, checkpoint_path=path, resume=True,
        )
        assert resumed.resumed_from_iteration == 40
        uninterrupted = resilient_stationary(chain, full, tol=1e-12)
        np.testing.assert_allclose(
            resumed.result.distribution,
            uninterrupted.result.distribution,
            rtol=1e-10, atol=1e-14,
        )
        # Resuming from iteration 40 must save real work.
        assert (
            resumed.result.iterations + 40
            <= uninterrupted.result.iterations + 5
        )

    def test_resume_event_in_trail(self, tmp_path):
        chain = birth_death_fixture(64)
        path = str(tmp_path / "solve.ckpt.json")
        policy = FallbackPolicy(steps=(FallbackStep("power", max_iter=100_000),))
        resilient_stationary(
            chain, policy, tol=1e-12,
            checkpoint_path=path, checkpoint_interval=10,
        )
        outcome = resilient_stationary(
            chain, policy, tol=1e-12, checkpoint_path=path, resume=True,
        )
        assert outcome.events()[0]["event"] == "checkpoint_resume"

    def test_resume_rejects_foreign_checkpoint(self, tmp_path):
        path = str(tmp_path / "solve.ckpt.json")
        policy = FallbackPolicy(steps=(FallbackStep("power", max_iter=100_000),))
        resilient_stationary(
            birth_death_fixture(64), policy, tol=1e-10,
            checkpoint_path=path, checkpoint_interval=5,
        )
        with pytest.raises(CheckpointMismatch):
            resilient_stationary(
                birth_death_fixture(32), policy, tol=1e-10,
                checkpoint_path=path, resume=True,
            )

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path):
        outcome = resilient_stationary(
            birth_death_fixture(32), tol=1e-10,
            checkpoint_path=str(tmp_path / "none.json"), resume=True,
        )
        assert outcome.resumed_from_iteration is None
        assert outcome.result.converged


class TestWarmChaining:
    """Iterate chaining across rungs + solve-context warm starts."""

    def test_failed_rung_iterate_seeds_the_next(self):
        from repro.markov import stationary_distribution

        chain = birth_death_fixture(64)
        policy = FallbackPolicy(
            steps=(
                FallbackStep("power", max_iter=40),  # real progress, no converge
                FallbackStep("power", max_iter=5000),
            ),
            retry_perturbed=False,
        )
        outcome = resilient_stationary(chain, policy, tol=1e-12)
        assert [a.status for a in outcome.attempts] == ["failed", "converged"]
        assert outcome.attempts[0].warm_x0 is False
        assert outcome.attempts[1].warm_x0 is True
        # The carried iterate must buy iterations: the warm second rung
        # finishes in fewer steps than the same method run cold.
        cold = stationary_distribution(chain, method="power", tol=1e-12)
        assert outcome.attempts[1].iterations < cold.iterations
        assert outcome.result.warm_started

    def test_events_carry_the_warm_flag(self):
        chain = birth_death_fixture(64)
        policy = FallbackPolicy(
            steps=(
                FallbackStep("power", max_iter=40),
                FallbackStep("power", max_iter=5000),
            ),
            retry_perturbed=False,
        )
        outcome = resilient_stationary(chain, policy, tol=1e-12)
        events = outcome.events()
        assert events[0]["warm_x0"] is False
        assert events[1]["warm_x0"] is True

    def test_solve_context_warm_starts_second_call(self):
        from repro.markov import SolveContext

        chain = birth_death_fixture(64)
        ctx = SolveContext()
        # Pin the head to power so iteration counts are informative (the
        # default multigrid head direct-solves a 64-state chain in one
        # V-cycle, warm or cold).
        policy = FallbackPolicy(
            steps=(FallbackStep("power", max_iter=5000),),
            retry_perturbed=False,
        )
        first = resilient_stationary(chain, policy, tol=1e-10, solve_context=ctx)
        second = resilient_stationary(chain, policy, tol=1e-10, solve_context=ctx)
        assert first.attempts[0].warm_x0 is False
        assert second.attempts[0].warm_x0 is True
        assert second.result.iterations < first.result.iterations
        assert ctx.stats()["warm_starts"] == 1
        np.testing.assert_allclose(
            second.result.distribution, first.result.distribution, atol=1e-8
        )

    def test_explicit_x0_beats_the_context(self):
        from repro.markov import SolveContext, solve_direct

        chain = birth_death_fixture(64)
        ctx = SolveContext()
        ctx.record_solution(chain, solve_direct(chain).distribution)
        n = chain.n_states
        outcome = resilient_stationary(
            chain, tol=1e-10, x0=np.full(n, 1.0 / n), solve_context=ctx,
        )
        # A caller-provided x0 is not a context warm start.
        assert outcome.attempts[0].warm_x0 is False
        assert ctx.stats()["warm_starts"] == 0
