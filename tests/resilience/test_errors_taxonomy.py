"""Executor error types and the taxonomy carried through failure entries.

``failure_entry`` is what travels through the ledger and run manifests:
the exact exception class plus the nearest taxonomy *family*, so
``repro stats`` can group a campaign's failures by cause even after the
exception objects themselves are long gone.
"""

import pytest

from repro.resilience import (
    ExecutorError,
    ExecutorInterrupted,
    PointTimeout,
    PoolUnavailable,
    ResilienceError,
    SolverDiverged,
    WorkerLost,
    failure_entry,
)


class TestExecutorErrors:
    def test_hierarchy(self):
        for cls in (PointTimeout, WorkerLost, PoolUnavailable,
                    ExecutorInterrupted):
            assert issubclass(cls, ExecutorError)
            assert issubclass(cls, ResilienceError)

    def test_point_timeout_fields(self):
        err = PointTimeout("too slow", index=3, timeout_s=5.0, attempts=2)
        assert err.index == 3
        assert err.timeout_s == 5.0
        assert err.attempts == 2

    def test_worker_lost_fields(self):
        err = WorkerLost(
            "gone", index=1, worker_id=2, exitcode=-9, reason="killed",
            attempts=1,
        )
        assert err.worker_id == 2
        assert err.exitcode == -9
        assert err.reason == "killed"

    def test_interrupted_carries_progress(self):
        err = ExecutorInterrupted(
            "stopped", completed=5, failed=1, pending=2
        )
        assert (err.completed, err.failed, err.pending) == (5, 1, 2)


class TestFailureEntry:
    def test_taxonomy_leaf_classes_map_to_themselves(self):
        entry = failure_entry(PointTimeout("t", index=0, timeout_s=1.0))
        assert entry["error_type"] == "PointTimeout"
        assert entry["taxonomy"] == "PointTimeout"
        entry = failure_entry(SolverDiverged("boom"))
        assert entry["taxonomy"] == "SolverDiverged"

    def test_subclass_maps_to_nearest_family(self):
        class CustomLost(WorkerLost):
            pass

        entry = failure_entry(CustomLost("gone", index=0, worker_id=1))
        assert entry["error_type"] == "CustomLost"
        assert entry["taxonomy"] == "WorkerLost"

    def test_external_exceptions_are_marked_external(self):
        entry = failure_entry(ValueError("not ours"))
        assert entry["error_type"] == "ValueError"
        assert entry["taxonomy"] == "external"
        assert entry["message"] == "not ours"

    def test_entry_is_json_safe(self):
        import json

        entry = failure_entry(WorkerLost("x", index=0, worker_id=1))
        assert json.loads(json.dumps(entry)) == entry
