"""Acceptance: every injected fault is caught and classified as expected."""

import pytest

from repro.resilience.faults import (
    FAULT_SCENARIOS,
    format_fault_report,
    run_fault_suite,
)

EXPECTED_DIAGNOSES = {
    "nan_matvec": "NumericalContamination",
    "stalled_residual": "SolverStagnated",
    "killed_sweep_point": "SimulatedWorkerKill",
    "corrupted_checkpoint": "CheckpointCorrupted",
    "memory_budget": "BudgetExceeded",
    "fallback_exhausted": "FallbackExhausted",
}


class TestFaultSuite:
    def test_battery_covers_the_issue_faults(self):
        assert set(EXPECTED_DIAGNOSES) <= set(FAULT_SCENARIOS)

    def test_every_fault_is_caught(self):
        outcomes = run_fault_suite(profile="full")
        missed = [o.name for o in outcomes if not o.caught]
        assert not missed, f"faults not caught: {missed}"

    def test_diagnoses_match_expectations(self):
        outcomes = {o.name: o for o in run_fault_suite(profile="full")}
        for name, expected in EXPECTED_DIAGNOSES.items():
            assert outcomes[name].diagnosis == expected, name

    def test_outcomes_are_structured_events(self):
        import json

        for outcome in run_fault_suite(profile="quick"):
            event = outcome.to_event()
            assert event["event"] == "fault_injection"
            json.dumps(event)

    def test_report_is_renderable(self):
        outcomes = run_fault_suite(profile="quick")
        report = format_fault_report(outcomes)
        assert "caught" in report
        for outcome in outcomes:
            assert outcome.name in report

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown fault scenario"):
            run_fault_suite(names=["no-such-fault"])
