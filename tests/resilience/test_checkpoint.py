"""Checkpoint formats: bit-exact round trips, atomicity, corruption refusal."""

import json
import os

import numpy as np
import pytest

from repro.resilience import (
    CheckpointCorrupted,
    CheckpointMismatch,
    PointCheckpointer,
    SolverCheckpoint,
    SolverCheckpointer,
    decode_array,
    encode_array,
    load_solver_checkpoint,
    save_solver_checkpoint,
)
from repro.resilience.faults import corrupt_checkpoint


class TestArrayEncoding:
    def test_round_trip_is_bit_exact(self):
        rng = np.random.default_rng(7)
        x = rng.uniform(1e-300, 1.0, 257)  # denormal-adjacent values too
        back = decode_array(encode_array(x))
        assert back.dtype == x.dtype
        assert np.array_equal(
            back.view(np.uint64), x.view(np.uint64)
        )  # every bit, not just allclose

    def test_shape_preserved(self):
        x = np.arange(12.0).reshape(3, 4)
        assert decode_array(encode_array(x)).shape == (3, 4)

    def test_garbage_payload_is_corruption(self):
        with pytest.raises(CheckpointCorrupted):
            decode_array({"dtype": "float64", "shape": [2], "data": "!!!"})


class TestSolverCheckpoint:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "solve.ckpt.json")
        x = np.random.default_rng(0).dirichlet(np.ones(64))
        save_solver_checkpoint(path, SolverCheckpoint(
            method="multigrid", iteration=150, vector=x,
            residual_history=[1.0, 0.1, 0.01],
            job={"n_states": 64},
        ))
        back = load_solver_checkpoint(path)
        assert back.method == "multigrid"
        assert back.iteration == 150
        assert np.array_equal(back.vector, x)
        assert back.residual_history == [1.0, 0.1, 0.01]
        assert back.job == {"n_states": 64}

    def test_history_tail_is_bounded(self, tmp_path):
        from repro.resilience.checkpoint import _HISTORY_TAIL

        path = str(tmp_path / "solve.ckpt.json")
        save_solver_checkpoint(path, SolverCheckpoint(
            method="power", iteration=10_000, vector=np.ones(4) / 4,
            residual_history=list(np.linspace(1, 0, 10_000)),
        ))
        back = load_solver_checkpoint(path)
        assert len(back.residual_history) == _HISTORY_TAIL

    @pytest.mark.parametrize("mode", ["payload", "truncate"])
    def test_corruption_is_refused(self, tmp_path, mode):
        path = str(tmp_path / "solve.ckpt.json")
        save_solver_checkpoint(path, SolverCheckpoint(
            method="power", iteration=1, vector=np.ones(4) / 4,
        ))
        corrupt_checkpoint(path, mode=mode)
        with pytest.raises(CheckpointCorrupted):
            load_solver_checkpoint(path)

    def test_wrong_schema_is_refused(self, tmp_path):
        path = str(tmp_path / "solve.ckpt.json")
        with open(path, "w") as fh:
            json.dump({"schema": "something-else/1", "payload": {}}, fh)
        with pytest.raises(CheckpointCorrupted, match="schema"):
            load_solver_checkpoint(path)

    def test_missing_file_is_plain_oserror(self, tmp_path):
        # A missing checkpoint is an OS condition, not corruption.
        with pytest.raises(OSError):
            load_solver_checkpoint(str(tmp_path / "nope.json"))

    def test_no_tmp_litter_after_save(self, tmp_path):
        path = str(tmp_path / "solve.ckpt.json")
        for i in range(3):
            save_solver_checkpoint(path, SolverCheckpoint(
                method="power", iteration=i, vector=np.ones(4) / 4,
            ))
        assert sorted(os.listdir(tmp_path)) == ["solve.ckpt.json"]


class TestSolverCheckpointer:
    def test_saves_on_interval(self, tmp_path):
        path = str(tmp_path / "solve.ckpt.json")
        ckpt = SolverCheckpointer(path, interval=10, method="power",
                                  job={"n_states": 8})
        for i in range(1, 35):
            ckpt(i, np.full(8, 1 / 8) * (1 + i * 1e-6))
        assert ckpt.saves == 3  # iterations 10, 20, 30
        assert ckpt.load().iteration == 30

    def test_interval_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SolverCheckpointer(str(tmp_path / "x.json"), interval=0)


class TestPointCheckpointer:
    def test_resume_replays_completed_points(self, tmp_path):
        path = str(tmp_path / "points.json")
        job = {"kind": "sweep", "parameter": "counter_length"}
        first = PointCheckpointer(path, job)
        first.record(0, {"counter_length": 2, "ber": 1e-9})
        first.record(1, {"counter_length": 4, "ber": 1e-12})

        second = PointCheckpointer(path, job)
        assert second.resume() is True
        assert second.is_done(0) and second.is_done(1)
        assert not second.is_done(2)
        assert second.completed_record(1) == {"counter_length": 4, "ber": 1e-12}

    def test_resume_with_no_file_is_fresh_start(self, tmp_path):
        ckpt = PointCheckpointer(str(tmp_path / "nope.json"), {"kind": "sweep"})
        assert ckpt.resume() is False

    def test_foreign_job_is_mismatch(self, tmp_path):
        path = str(tmp_path / "points.json")
        PointCheckpointer(path, {"kind": "sweep", "tol": 1e-10}).record(0, {})
        other = PointCheckpointer(path, {"kind": "sweep", "tol": 1e-8})
        with pytest.raises(CheckpointMismatch, match="different job"):
            other.resume()

    def test_failures_are_persisted_and_cleared_on_success(self, tmp_path):
        path = str(tmp_path / "points.json")
        job = {"kind": "sweep"}
        ckpt = PointCheckpointer(path, job)
        ckpt.record_failure(3, {"error_type": "SolverStagnated"})

        back = PointCheckpointer(path, job)
        back.resume()
        assert back.failed["3"]["error_type"] == "SolverStagnated"
        # A later success on the same point supersedes the failure.
        back.record(3, {"ber": 1e-9})
        again = PointCheckpointer(path, job)
        again.resume()
        assert again.is_done(3)
        assert "3" not in again.failed


class TestPointCheckpointerAux:
    """Side-band aux payloads (warm-start solutions) and job peeking."""

    def test_aux_round_trips_with_its_point(self, tmp_path):
        path = str(tmp_path / "points.json")
        job = {"kind": "sweep"}
        x = encode_array(np.linspace(0.0, 1.0, 7))
        first = PointCheckpointer(path, job)
        first.record(0, {"ber": 1e-9}, aux={"x": x})
        first.record(1, {"ber": 1e-10})  # no aux for this one

        back = PointCheckpointer(path, job)
        assert back.resume()
        aux = back.aux_for(0)
        assert np.array_equal(decode_array(aux["x"]), np.linspace(0.0, 1.0, 7))
        assert back.aux_for(1) is None

    def test_ledger_without_aux_key_still_loads(self, tmp_path):
        # PR-4-era ledgers never wrote an "aux" key; their digests must
        # keep verifying and resume must see empty aux.
        path = str(tmp_path / "points.json")
        job = {"kind": "sweep"}
        PointCheckpointer(path, job).record(0, {"ber": 1e-9})
        payload = json.load(open(path))["payload"]
        assert "aux" not in payload  # aux key only written when non-empty

        back = PointCheckpointer(path, job)
        assert back.resume()
        assert back.aux_for(0) is None

    def test_peek_job_reads_fingerprint_without_a_job(self, tmp_path):
        path = str(tmp_path / "points.json")
        job = {"kind": "sweep", "warm_lineages": 3}
        PointCheckpointer(path, job).record(0, {})
        assert PointCheckpointer.peek_job(path) == job
        assert PointCheckpointer.peek_job(str(tmp_path / "nope.json")) is None

    def test_peek_job_verifies_integrity(self, tmp_path):
        path = str(tmp_path / "points.json")
        PointCheckpointer(path, {"kind": "sweep"}).record(0, {})
        corrupt_checkpoint(path, mode="payload")
        with pytest.raises(CheckpointCorrupted):
            PointCheckpointer.peek_job(path)
