"""Cross-module integration and property tests.

These tests exercise entire pipelines (spec -> model -> solver ->
measures) over randomized configurations, asserting the invariants that
tie the subsystems together.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CDRSpec, analyze_cdr
from repro.cdr import PhaseGrid, build_cdr_chain, compile_cdr_network
from repro.markov import (
    solve_direct,
    stationary_event_rate,
)
from repro.noise import DiscreteDistribution


@st.composite
def small_specs(draw):
    """Random small-but-valid CDR specs (state spaces of a few thousand)."""
    n_clock_phases = draw(st.sampled_from([4, 8, 16]))
    multiplier = draw(st.sampled_from([2, 4]))
    counter = draw(st.integers(min_value=1, max_value=4))
    nw_std = draw(st.floats(min_value=0.01, max_value=0.2))
    nr_max = draw(st.floats(min_value=0.002, max_value=0.05))
    nr_mean = draw(st.floats(min_value=0.0, max_value=1.0)) * nr_max
    return CDRSpec(
        n_phase_points=n_clock_phases * multiplier * 2,
        n_clock_phases=n_clock_phases,
        counter_length=counter,
        max_run_length=draw(st.integers(min_value=1, max_value=3)),
        transition_density=draw(st.floats(min_value=0.2, max_value=1.0)),
        nw_std=nw_std,
        nw_atoms=7,
        nr_max=nr_max,
        nr_mean=nr_mean,
    )


@st.composite
def tiny_network_params(draw):
    """Random tiny configurations for network-vs-vectorized equality."""
    M = draw(st.sampled_from([8, 16]))
    grid = PhaseGrid(M)
    step = grid.step
    nw_vals = sorted(
        draw(
            st.lists(
                st.floats(min_value=-0.2, max_value=0.2),
                min_size=2, max_size=3, unique=True,
            )
        )
    )
    nw_w = [1.0 / len(nw_vals)] * len(nw_vals)
    p_minus = draw(st.floats(min_value=0.05, max_value=0.4))
    p_plus = draw(st.floats(min_value=0.05, max_value=0.4))
    return dict(
        grid=grid,
        nw=DiscreteDistribution(nw_vals, nw_w),
        nr=DiscreteDistribution(
            [-step, 0.0, step], [p_minus, 1.0 - p_minus - p_plus, p_plus]
        ),
        counter_length=draw(st.integers(min_value=1, max_value=2)),
        phase_step_units=draw(st.integers(min_value=1, max_value=3)),
        transition_density=draw(st.floats(min_value=0.3, max_value=1.0)),
        max_run_length=draw(st.integers(min_value=1, max_value=2)),
    )


class TestEndToEndProperties:
    @given(small_specs())
    @settings(max_examples=12, deadline=None)
    def test_analysis_invariants(self, spec):
        analysis = analyze_cdr(spec, solver="direct")
        eta = analysis.stationary
        assert eta.sum() == pytest.approx(1.0, abs=1e-8)
        assert eta.min() >= -1e-10
        assert 0.0 <= analysis.ber <= 1.0
        assert 0.0 <= analysis.ber_discrete <= 1.0
        assert analysis.slip_rate >= -1e-15
        assert analysis.mean_symbols_between_slips >= 1.0
        assert 0.0 <= analysis.phase_stats["rms_ui"] <= 0.5
        # Kac-type consistency: MTBF * rate == 1 (when slips occur)
        if analysis.slip_rate > 0:
            assert analysis.slip_rate * analysis.mean_symbols_between_slips == (
                pytest.approx(1.0, rel=1e-9)
            )

    @given(small_specs())
    @settings(max_examples=8, deadline=None)
    def test_solver_agreement(self, spec):
        direct = analyze_cdr(spec, solver="direct")
        power = analyze_cdr(spec, solver="power", tol=1e-11, damping=0.9)
        assert np.abs(direct.stationary - power.stationary).sum() < 1e-6

    @given(small_specs())
    @settings(max_examples=8, deadline=None)
    def test_phase_index_stationarity(self, spec):
        """The exact flux invariant holds for every random spec."""
        model = spec.build_model()
        eta = solve_direct(model.chain.P).distribution
        coo = model.chain.P.tocoo()
        M = model.n_phase_points
        dm = (coo.col % M).astype(np.int64) - (coo.row % M)
        assert float(np.sum(eta[coo.row] * coo.data * dm)) == pytest.approx(
            0.0, abs=1e-9
        )


class TestNetworkEquivalenceProperty:
    @given(tiny_network_params())
    @settings(max_examples=6, deadline=None)
    def test_network_matches_vectorized_builder(self, params):
        """The two model compilers agree on the stationary phase marginal
        and the slip rate for random tiny configurations."""
        model = build_cdr_chain(**params)
        nc = compile_cdr_network(**params)
        eta_model = solve_direct(model.chain.P).distribution
        pdf_model = model.phase_marginal(eta_model)
        eta_net = solve_direct(nc.chain.P).distribution
        pdf_net = np.zeros(params["grid"].n_points)
        for i, lab in enumerate(nc.chain.state_labels):
            pdf_net[lab[-1]] += eta_net[i]
        assert np.abs(pdf_net - pdf_model).sum() < 1e-7
        rate_model = stationary_event_rate(eta_model, model.slip_matrix)
        rate_net = stationary_event_rate(eta_net, nc.event_matrices["slip"])
        assert rate_net == pytest.approx(rate_model, rel=1e-6, abs=1e-12)
