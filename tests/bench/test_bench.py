"""Unit tests for the benchmark registry, suite runner and compare gate.

Registry behaviour mirrors the solver/scenario registries (duplicate
rejection, choose-from errors); the suite runner's report must carry the
``repro.bench/1`` schema with a stable environment fingerprint; and the
compare gate must trip on an injected 2x regression while staying silent
on a self-comparison and on micro-benchmark jitter below the absolute
floor.
"""

import copy
import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    benchmark_names,
    compare_reports,
    default_output_path,
    environment_fingerprint,
    format_comparison,
    get_benchmark,
    load_report,
    run_benchmark,
    run_suite,
    suite_benchmarks,
    suite_names,
    write_report,
)
from repro.bench.registry import BenchmarkEntry, register_benchmark


def _entry(name="t/unit", rounds=3, warmup=1, fn=None):
    def factory():
        calls = []

        def workload():
            calls.append(1)
            if fn is not None:
                return fn(len(calls))
            return {"calls": len(calls)}

        return workload

    return BenchmarkEntry(
        name=name, factory=factory, suites=("unit",), rounds=rounds,
        warmup=warmup, description="unit fixture",
    )


class TestRegistry:
    def test_builtin_battery_registered(self):
        names = benchmark_names()
        # The acceptance grid: all four scenarios on both common backends.
        for scenario in ("baseline", "alexander-offset", "bangbang-freq",
                         "mesochronous-settle"):
            for backend in ("assembled", "matrix-free"):
                assert f"scenario/{scenario}@{backend}" in names
        assert {"smoke", "ext-op", "parallel", "scenarios"} <= set(suite_names())

    def test_suite_selection(self):
        smoke = suite_benchmarks("smoke")
        assert all("smoke" in e.suites for e in smoke)
        assert len(suite_benchmarks(None)) == len(benchmark_names())
        with pytest.raises(ValueError, match="unknown suite"):
            suite_benchmarks("no-such-suite")

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            get_benchmark("no/such-bench")

    def test_duplicate_registration_rejected(self):
        name = "unit/duplicate-probe"
        register_benchmark(name, suites=("unit-probe",))(lambda: (lambda: None))
        with pytest.raises(ValueError, match="already registered"):
            register_benchmark(name, suites=("unit-probe",))(
                lambda: (lambda: None)
            )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="rounds"):
            register_benchmark("unit/bad-rounds", suites=("u",), rounds=0)
        with pytest.raises(ValueError, match="suite"):
            register_benchmark("unit/no-suites", suites=())


class TestRunner:
    def test_run_benchmark_rows(self):
        row = run_benchmark(_entry(rounds=4, warmup=2))
        assert row["rounds"] == 4 and row["warmup"] == 2
        assert len(row["times_s"]) == 4
        assert row["min_s"] == min(row["times_s"])
        assert row["min_s"] <= row["mean_s"]
        # warmup calls run before the timed ones and meta is the last
        # workload return: 2 warmup + 4 timed = 6.
        assert row["meta"] == {"calls": 6}

    def test_run_suite_report_shape(self):
        seen = []
        report = run_suite(
            names=["operator/rmatvec-assembled"], rounds=1, warmup=0,
            progress=lambda entry, row: seen.append(entry.name),
        )
        assert report["schema"] == BENCH_SCHEMA
        assert seen == ["operator/rmatvec-assembled"]
        assert report["results"][0]["rounds"] == 1
        assert report["fingerprint"]["python"]

    def test_fingerprint_stability(self):
        # Two fingerprints of one environment must be identical -- compare
        # relies on it to distinguish machine changes from regressions.
        assert environment_fingerprint() == environment_fingerprint()
        for key in ("python", "numpy", "scipy", "repro", "system",
                    "machine", "cpu_count", "python_implementation"):
            assert key in environment_fingerprint()

    def test_report_round_trip(self, tmp_path):
        report = {
            "schema": BENCH_SCHEMA, "suite": "unit", "created_unix": 0.0,
            "fingerprint": environment_fingerprint(),
            "results": [],
        }
        path = tmp_path / "BENCH_unit.json"
        write_report(str(path), report)
        assert load_report(str(path)) == report
        with pytest.raises(ValueError, match="schema"):
            bad = tmp_path / "bad.json"
            bad.write_text(json.dumps({"schema": "nope"}))
            load_report(str(bad))

    def test_default_output_paths(self):
        assert default_output_path("ext-op") == "BENCH_ext_op.json"
        assert default_output_path("parallel") == "BENCH_parallel.json"
        assert default_output_path("smoke") == "BENCH_smoke.json"
        assert default_output_path(None) == "BENCH_all.json"


def _report(times):
    return {
        "schema": BENCH_SCHEMA, "suite": "unit", "created_unix": 0.0,
        "fingerprint": environment_fingerprint(),
        "results": [
            {"name": name, "min_s": t, "mean_s": t, "times_s": [t],
             "rounds": 1, "warmup": 0, "suites": ["unit"], "meta": {}}
            for name, t in times.items()
        ],
    }


class TestCompare:
    def test_self_comparison_passes(self):
        report = _report({"a": 1.0, "b": 0.25})
        cmp = compare_reports(report, copy.deepcopy(report))
        assert cmp.exit_code == 0
        assert all(r.status == "ok" for r in cmp.rows)

    def test_injected_2x_regression_fails(self):
        base = _report({"a": 1.0, "b": 0.25})
        cur = _report({"a": 2.0, "b": 0.25})
        cmp = compare_reports(base, cur)
        assert cmp.exit_code == 1
        assert [r.name for r in cmp.regressions] == ["a"]
        assert cmp.regressions[0].ratio == pytest.approx(2.0)

    def test_threshold_boundary(self):
        base = _report({"a": 1.0})
        assert compare_reports(base, _report({"a": 1.4})).exit_code == 0
        assert compare_reports(base, _report({"a": 1.6})).exit_code == 1
        # A custom threshold moves the gate.
        assert compare_reports(
            base, _report({"a": 1.6}), threshold=1.0
        ).exit_code == 0

    def test_micro_jitter_below_absolute_floor_never_regresses(self):
        # 3x slower but only 2 ms absolute: scheduler noise, not a
        # regression.
        base = _report({"micro": 0.001})
        cur = _report({"micro": 0.003})
        assert compare_reports(base, cur).exit_code == 0
        # Dropping the floor makes the same delta trip the gate.
        assert compare_reports(base, cur, min_delta_s=0.0).exit_code == 1

    def test_improvement_and_membership_changes(self):
        base = _report({"a": 1.0, "gone": 1.0})
        cur = _report({"a": 0.4, "new": 1.0})
        cmp = compare_reports(base, cur)
        assert cmp.exit_code == 0
        by_name = {r.name: r.status for r in cmp.rows}
        assert by_name == {"a": "improved", "gone": "removed", "new": "added"}

    def test_fingerprint_change_warns_but_does_not_fail(self):
        base = _report({"a": 1.0})
        cur = copy.deepcopy(base)
        cur["fingerprint"]["numpy"] = "0.0.1"
        cmp = compare_reports(base, cur)
        assert cmp.exit_code == 0
        assert "numpy" in cmp.fingerprint_changes
        assert "fingerprint changed" in format_comparison(cmp)

    def test_comparison_serializes(self):
        cmp = compare_reports(_report({"a": 1.0}), _report({"a": 2.0}))
        payload = cmp.to_dict()
        assert payload["schema"] == "repro.bench-compare/1"
        assert payload["regressed"] == 1
        json.dumps(payload)  # JSON-safe

    def test_invalid_gate_parameters(self):
        base = _report({"a": 1.0})
        with pytest.raises(ValueError, match="threshold"):
            compare_reports(base, base, threshold=0.0)
        with pytest.raises(ValueError, match="min_delta"):
            compare_reports(base, base, min_delta_s=-1.0)


class TestCLI:
    def test_bench_cli_run_compare_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "base.json"
        assert main([
            "bench", "run", "--name", "operator/rmatvec-assembled",
            "--rounds", "1", "--warmup", "0", "--output", str(out),
        ]) == 0
        assert load_report(str(out))["results"][0]["name"] == (
            "operator/rmatvec-assembled"
        )
        # Same baseline twice: exit 0.
        assert main(["bench", "compare", str(out), str(out)]) == 0
        # Synthetic 2x slowdown: exit nonzero, and the JSON report names it.
        slow = json.loads(out.read_text())
        slow["results"][0]["min_s"] *= 2.0
        slow_path = tmp_path / "slow.json"
        slow_path.write_text(json.dumps(slow))
        cmp_path = tmp_path / "cmp.json"
        assert main([
            "bench", "compare", str(out), str(slow_path),
            "--report", str(cmp_path),
        ]) == 1
        assert json.loads(cmp_path.read_text())["regressed"] == 1
        assert main(["bench", "report", str(out)]) == 0
        assert main(["bench", "list"]) == 0
        capsys.readouterr()


class TestSkipRows:
    """min_cpus gating: explicit skip rows instead of dishonest timings."""

    def _entry_with_min_cpus(self, min_cpus):
        def factory():
            def workload():
                return {"ran": True}

            return workload

        return BenchmarkEntry(
            name="t/parallel", factory=factory, suites=("unit",), rounds=2,
            warmup=0, description="unit fixture", min_cpus=min_cpus,
        )

    def test_insufficient_cpus_yields_skip_row(self):
        row = run_benchmark(self._entry_with_min_cpus(10**6))
        assert row["skipped"] == "insufficient cpus"
        assert row["required_cpus"] == 10**6
        assert row["cpu_count"] >= 1
        assert "min_s" not in row and "times_s" not in row

    def test_sufficient_cpus_runs_normally(self):
        row = run_benchmark(self._entry_with_min_cpus(1))
        assert "skipped" not in row
        assert row["meta"] == {"ran": True}

    def test_run_suite_notes_skips_in_fingerprint(self, monkeypatch):
        import repro.bench.suite as suite_mod

        entries = (self._entry_with_min_cpus(10**6),
                   self._entry_with_min_cpus(1))
        monkeypatch.setattr(
            suite_mod, "suite_benchmarks", lambda suite: entries
        )
        report = suite_mod.run_suite("unit")
        skipped = [r for r in report["results"] if r.get("skipped")]
        assert len(skipped) == 1
        assert "insufficient cpus" in report["fingerprint"]["note"]
        assert "t/parallel" in report["fingerprint"]["note"]

    def test_compare_never_gates_on_skip_rows(self):
        base = {"schema": BENCH_SCHEMA, "fingerprint": {}, "results": [
            {"name": "p/4jobs", "min_s": 1.0},
        ]}
        cur = {"schema": BENCH_SCHEMA, "fingerprint": {}, "results": [
            {"name": "p/4jobs", "skipped": "insufficient cpus"},
        ]}
        comparison = compare_reports(base, cur)
        [row] = comparison.rows
        assert row.status == "skipped"
        assert comparison.exit_code == 0
        assert "skipped" in format_comparison(comparison)

    def test_parallel_suite_declares_cpu_requirements(self):
        assert get_benchmark("parallel/sweep-serial").min_cpus == 1
        assert get_benchmark("parallel/sweep-2jobs").min_cpus == 2
        assert get_benchmark("parallel/sweep-4jobs").min_cpus == 4

    def test_register_rejects_bad_min_cpus(self):
        with pytest.raises(ValueError, match="min_cpus"):
            register_benchmark(
                "t/bad-cpus", suites=("unit",), min_cpus=0
            )(lambda: None)
