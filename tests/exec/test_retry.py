"""Backoff schedule and timeout accounting, driven by a fake clock.

The retry schedule must be *deterministic* (hash-seeded jitter, no RNG):
a killed-then-resumed run replays the same waits, which is part of the
bit-identical-resume contract.  The timeout tracker is pure arithmetic
over an injectable clock, so these tests never sleep.
"""

import pytest

from repro.exec import Clock, ExecConfig, RetryPolicy, TimeoutTracker


class FakeClock(Clock):
    """A clock the test advances by hand."""

    def __init__(self, start=100.0):
        self.now = start
        self.slept = []

    def monotonic(self):
        return self.now

    def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds

    def advance(self, seconds):
        self.now += seconds


class TestRetryPolicy:
    def test_schedule_is_deterministic(self):
        p = RetryPolicy(max_retries=5)
        a = [p.delay_s(k, token="sweep:3") for k in range(1, 6)]
        b = [p.delay_s(k, token="sweep:3") for k in range(1, 6)]
        assert a == b  # bit-identical, not just close

    def test_distinct_tokens_decorrelate(self):
        p = RetryPolicy()
        assert p.delay_s(1, token="sweep:3") != p.delay_s(1, token="sweep:4")

    def test_exponential_growth_capped(self):
        p = RetryPolicy(
            max_retries=10, base_delay_s=1.0, factor=2.0, max_delay_s=8.0,
            jitter_frac=0.0,
        )
        assert [p.delay_s(k) for k in range(1, 6)] == [1.0, 2.0, 4.0, 8.0, 8.0]

    def test_jitter_bounded_by_fraction(self):
        p = RetryPolicy(base_delay_s=1.0, factor=1.0, jitter_frac=0.25)
        for k in range(1, 20):
            d = p.delay_s(k, token=f"t{k}")
            assert 1.0 <= d < 1.25

    def test_should_retry_is_one_based_and_bounded(self):
        p = RetryPolicy(max_retries=2)
        assert p.should_retry(1) and p.should_retry(2)
        assert not p.should_retry(3)
        assert not RetryPolicy(max_retries=0).should_retry(1)

    def test_attempt_must_be_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay_s(0)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="factor"):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError, match="jitter_frac"):
            RetryPolicy(jitter_frac=1.5)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay_s=-1.0)


class TestTimeoutTracker:
    def test_overdue_after_budget(self):
        clock = FakeClock()
        tracker = TimeoutTracker(clock, timeout_s=10.0)
        tracker.arm("w0")
        clock.advance(9.0)
        assert tracker.overdue() == []
        clock.advance(1.5)
        assert tracker.overdue() == ["w0"]
        assert tracker.elapsed("w0") == pytest.approx(10.5)

    def test_disarm_clears_deadline(self):
        clock = FakeClock()
        tracker = TimeoutTracker(clock, timeout_s=1.0)
        tracker.arm("w0")
        tracker.disarm("w0")
        clock.advance(100.0)
        assert tracker.overdue() == []
        assert tracker.elapsed("w0") is None

    def test_rearm_resets_the_clock(self):
        clock = FakeClock()
        tracker = TimeoutTracker(clock, timeout_s=5.0)
        tracker.arm("w0")
        clock.advance(4.0)
        tracker.arm("w0")  # new point dispatched to the same worker
        clock.advance(4.0)
        assert tracker.overdue() == []

    def test_no_timeout_means_never_overdue(self):
        clock = FakeClock()
        tracker = TimeoutTracker(clock, timeout_s=None)
        tracker.arm("w0")
        clock.advance(1e9)
        assert tracker.overdue() == []


class TestExecConfig:
    def test_derived_budgets(self):
        cfg = ExecConfig(jobs=3, heartbeat_s=1.0)
        assert cfg.stale_budget_s() == 10.0
        assert cfg.respawn_budget() == 6
        assert ExecConfig(jobs=1).respawn_budget() == 4

    def test_explicit_overrides_win(self):
        cfg = ExecConfig(jobs=3, stale_after_s=2.5, max_respawns=1)
        assert cfg.stale_budget_s() == 2.5
        assert cfg.respawn_budget() == 1

    def test_retry_policy_inherits_max_retries(self):
        assert ExecConfig(max_retries=7).retry_policy().max_retries == 7
        custom = RetryPolicy(max_retries=1, base_delay_s=0.01)
        assert ExecConfig(retry=custom).retry_policy() is custom
