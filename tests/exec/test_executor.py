"""Scheduler-level tests of :func:`repro.exec.run_points`.

A cheap module-level toy runner (no Markov solves) keeps these fast while
exercising the full process machinery: real forked workers, real
SIGKILLs, real queues.  The invariant under every chaos scenario is
exactly-once resolution -- each point fires ``on_done`` or ``on_failed``
exactly once, whatever dies underneath it.
"""

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

import pytest

from repro.exec import ExecConfig, RetryPolicy, WorkerChaos, run_points
from repro.resilience import ExecutorInterrupted, PoolUnavailable

#: Fast retry schedule so chaos tests do not sit in backoff waits.
FAST_RETRY = RetryPolicy(max_retries=2, base_delay_s=0.01, max_delay_s=0.05)


@dataclass
class ToyRunner:
    """Picklable fixture runner: doubles the payload value."""

    fail_on: Tuple[int, ...] = ()
    sleep_s: float = 0.0
    warm: bool = False
    setup_fail: bool = False
    chaos: Optional[WorkerChaos] = None
    offset: int = field(default=100)

    def setup(self):
        if self.setup_fail:
            raise RuntimeError("runner setup exploded")
        return {"offset": self.offset}

    def run(self, state, index, payload):
        if self.chaos is not None:
            self.chaos.before_point(index)
        if index in self.fail_on:
            raise ValueError(f"point {index} is deterministically bad")
        if self.sleep_s:
            time.sleep(self.sleep_s)
        record = {
            "index": index,
            "y": payload["value"] * 2 + state["offset"],
            "warmed": payload.get("x0") is not None,
        }
        aux = {"x": index} if self.warm else {}
        if self.chaos is not None:
            self.chaos.after_point(index, aux)
        return record, aux


@dataclass
class RelentlessChaos(WorkerChaos):
    """Chaos that never disarms: fires on every attempt of its point."""

    def _arm(self):
        return True


def _collecting_callbacks():
    done, failed = {}, {}

    def on_done(index, record, aux):
        assert index not in done and index not in failed  # exactly once
        done[index] = (record, aux)

    def on_failed(index, entry):
        assert index not in done and index not in failed
        failed[index] = entry

    return done, failed, on_done, on_failed


def _points(n):
    return [(i, {"value": i}) for i in range(n)]


class TestPoolHappyPath:
    def test_all_points_complete(self):
        done, failed, on_done, on_failed = _collecting_callbacks()
        stats = run_points(
            ToyRunner(), _points(6), ExecConfig(jobs=2),
            on_done=on_done, on_failed=on_failed,
        )
        assert sorted(done) == list(range(6))
        assert not failed
        assert stats.mode == "pool"
        assert stats.completed == 6 and stats.failed == 0
        assert done[3][0] == {"index": 3, "y": 106, "warmed": False}

    def test_deterministic_failure_recorded_without_retry(self):
        done, failed, on_done, on_failed = _collecting_callbacks()
        stats = run_points(
            ToyRunner(fail_on=(2,)), _points(4), ExecConfig(jobs=2),
            on_done=on_done, on_failed=on_failed,
        )
        assert sorted(done) == [0, 1, 3]
        assert list(failed) == [2]
        assert failed[2]["error_type"] == "ValueError"
        assert failed[2]["taxonomy"] == "external"
        assert stats.retries == 0  # analysis failures never retry

    def test_warm_lineages_thread_x0(self):
        done, _, on_done, on_failed = _collecting_callbacks()
        prev = {0: None, 1: 0, 2: 1, 3: None, 4: 3}
        stats = run_points(
            ToyRunner(warm=True), _points(5), ExecConfig(jobs=2),
            prev=prev, on_done=on_done, on_failed=on_failed,
        )
        warmed = {i: rec["warmed"] for i, (rec, _) in done.items()}
        assert warmed == {0: False, 1: True, 2: True, 3: False, 4: True}
        assert stats.warm_starts == 3

    def test_chain_skips_failed_ancestor_to_nearest_solved(self):
        done, failed, on_done, on_failed = _collecting_callbacks()
        prev = {0: None, 1: 0, 2: 1}
        run_points(
            ToyRunner(warm=True, fail_on=(1,)), _points(3),
            ExecConfig(jobs=2), prev=prev,
            on_done=on_done, on_failed=on_failed,
        )
        # point 2's predecessor failed; it warms from its grandparent 0
        assert done[2][0]["warmed"] is True
        assert list(failed) == [1]


class TestChaos:
    def test_sigkill_mid_point_requeued_exactly_once(self, tmp_path):
        chaos = WorkerChaos("sigkill", index=1, flag_path=str(tmp_path / "f"))
        done, failed, on_done, on_failed = _collecting_callbacks()
        stats = run_points(
            ToyRunner(chaos=chaos), _points(4),
            ExecConfig(jobs=2, retry=FAST_RETRY),
            on_done=on_done, on_failed=on_failed,
        )
        assert sorted(done) == list(range(4)) and not failed
        assert stats.workers_lost >= 1
        assert stats.requeues >= 1
        assert stats.respawns >= 1

    def test_hang_is_timed_out_and_retried(self, tmp_path):
        chaos = WorkerChaos(
            "hang", index=1, flag_path=str(tmp_path / "f"), hang_s=3600.0
        )
        done, failed, on_done, on_failed = _collecting_callbacks()
        stats = run_points(
            ToyRunner(chaos=chaos), _points(3),
            ExecConfig(
                jobs=2, timeout_s=1.0, heartbeat_s=0.1, retry=FAST_RETRY
            ),
            on_done=on_done, on_failed=on_failed,
        )
        assert sorted(done) == [0, 1, 2] and not failed
        assert stats.timeouts >= 1

    def test_corrupt_payload_discarded_and_recomputed(self, tmp_path):
        chaos = WorkerChaos("corrupt", index=1, flag_path=str(tmp_path / "f"))
        done, failed, on_done, on_failed = _collecting_callbacks()
        stats = run_points(
            ToyRunner(chaos=chaos), _points(3),
            ExecConfig(jobs=2, retry=FAST_RETRY),
            on_done=on_done, on_failed=on_failed,
        )
        assert sorted(done) == [0, 1, 2] and not failed
        assert stats.workers_lost >= 1  # the lying worker was dropped
        assert "__corrupt_wire__" not in done[1][1]

    def test_retry_budget_exhaustion_records_typed_failure(self, tmp_path):
        # RelentlessChaos SIGKILLs every attempt of point 1, so its retry
        # budget runs out and the typed WorkerLost is recorded.
        chaos = RelentlessChaos(
            "sigkill", index=1, flag_path=str(tmp_path / "unused")
        )
        done, failed, on_done, on_failed = _collecting_callbacks()
        stats = run_points(
            ToyRunner(chaos=chaos), _points(3),
            ExecConfig(jobs=2, retry=RetryPolicy(max_retries=1,
                                                 base_delay_s=0.01)),
            on_done=on_done, on_failed=on_failed,
        )
        assert sorted(done) == [0, 2]
        assert failed[1]["error_type"] == "WorkerLost"
        assert failed[1]["taxonomy"] == "WorkerLost"
        assert failed[1]["exec_attempts"] == 2  # initial + 1 retry
        assert stats.failed == 1


class TestSerialDegradation:
    def test_pool_start_failure_degrades_to_serial(self):
        done, failed, on_done, on_failed = _collecting_callbacks()
        stats = run_points(
            ToyRunner(), _points(4), ExecConfig(jobs=2, fail_start=True),
            on_done=on_done, on_failed=on_failed,
        )
        assert sorted(done) == list(range(4)) and not failed
        assert stats.mode == "serial-fallback"
        assert stats.serial_points == 4

    def test_fallback_disabled_raises_typed_error(self):
        with pytest.raises(PoolUnavailable):
            run_points(
                ToyRunner(), _points(2),
                ExecConfig(jobs=2, fail_start=True, serial_fallback=False),
            )

    def test_serial_setup_failure_fails_every_remaining_point(self):
        done, failed, on_done, on_failed = _collecting_callbacks()
        stats = run_points(
            ToyRunner(setup_fail=True), _points(3),
            ExecConfig(jobs=2, fail_start=True),
            on_done=on_done, on_failed=on_failed,
        )
        assert not done and sorted(failed) == [0, 1, 2]
        assert all(e["error_type"] == "RuntimeError" for e in failed.values())
        assert stats.failed == 3

    def test_serial_fallback_preserves_warm_chains(self):
        done, _, on_done, on_failed = _collecting_callbacks()
        stats = run_points(
            ToyRunner(warm=True), _points(4),
            ExecConfig(jobs=2, fail_start=True),
            prev={0: None, 1: 0, 2: 1, 3: 2},
            on_done=on_done, on_failed=on_failed,
        )
        assert stats.warm_starts == 3
        assert [done[i][0]["warmed"] for i in range(4)] == [
            False, True, True, True,
        ]


class TestInterruption:
    def test_sigterm_raises_typed_interrupt(self):
        # A benign SIGTERM handler guards the window after run_points
        # restores the previous handler (the late timer must not kill
        # the test process if the run finishes early).
        previous = signal.signal(signal.SIGTERM, lambda *a: None)
        try:
            timer = threading.Timer(
                0.6, os.kill, args=(os.getpid(), signal.SIGTERM)
            )
            done, failed, on_done, on_failed = _collecting_callbacks()
            timer.start()
            try:
                with pytest.raises(ExecutorInterrupted) as excinfo:
                    run_points(
                        ToyRunner(sleep_s=0.5), _points(8),
                        ExecConfig(jobs=2, heartbeat_s=0.1),
                        on_done=on_done, on_failed=on_failed,
                    )
            finally:
                timer.cancel()
            err = excinfo.value
            assert err.pending > 0
            assert err.completed == len(done)
            assert err.completed + err.failed + err.pending == 8
            # completed points were flushed through on_done before the
            # interrupt -- the resume contract
            assert all(done[i][0]["index"] == i for i in done)
        finally:
            signal.signal(signal.SIGTERM, previous)
