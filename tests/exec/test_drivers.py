"""Elastic drivers: serial parity, ledger interop, crash-resume identity.

The headline robustness acceptance lives here: a sweep whose executor is
SIGKILLed after K of N points and then resumed -- even with a different
worker count -- produces a SweepResult identical (excluding volatile
wall-clock timing fields) to an uninterrupted run, with the same
warm-start accounting.  Timing fields are the only tolerated difference:
they measure the machine, not the model.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.cdr.sweep import sweep_parameter
from repro.core.spec import CDRSpec
from repro.exec import ExecConfig
from repro.markov import SolveContext

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

#: Volatile per-record fields excluded from bit-identity comparisons.
TIMING_FIELDS = {"form_time_s", "solve_time_s", "sim_time"}

VALUES = [0.35, 0.4, 0.45, 0.5, 0.55, 0.6]


def fast_spec():
    return CDRSpec(
        n_phase_points=32, n_clock_phases=16, counter_length=2,
        max_run_length=2, nw_atoms=5,
    )


def projection(record):
    return {k: v for k, v in record.items() if k not in TIMING_FIELDS}


def projections(result):
    return [projection(r) for r in result]


class TestSerialParity:
    def test_parallel_records_match_serial(self):
        serial = sweep_parameter(
            fast_spec(), "transition_density", VALUES, solver="power"
        )
        parallel = sweep_parameter(
            fast_spec(), "transition_density", VALUES, solver="power", jobs=2
        )
        assert projections(parallel) == projections(serial)
        assert serial.exec_stats is None
        assert parallel.exec_stats["jobs"] == 2
        assert parallel.exec_stats["completed"] == len(VALUES)

    def test_jobs_with_solve_context_rejected(self):
        with pytest.raises(ValueError, match="solve_context"):
            sweep_parameter(
                fast_spec(), "transition_density", VALUES[:2],
                solver="power", jobs=2, solve_context=SolveContext(),
            )

    def test_warm_sweep_counts_lineage_warm_starts(self):
        result = sweep_parameter(
            fast_spec(), "transition_density", VALUES, solver="power",
            jobs=2, warm_start=True,
        )
        # 6 points in min(jobs, n) = 2 chains: 2 heads, 4 warm starts
        assert result.exec_stats["warm_starts"] == 4
        assert sum(r["warm_started"] for r in result) == 4

    def test_deterministic_point_failure_carries_taxonomy(self):
        # transition_density > 1 is an invalid spec -> per-point failure
        result = sweep_parameter(
            fast_spec(), "transition_density", [0.4, 7.0, 0.6],
            solver="power", jobs=2,
        )
        assert len(result) == 2
        [entry] = result.failed_points
        assert entry["index"] == 1
        assert entry["error_type"] and entry["taxonomy"]
        assert entry["value"] == 7.0


class TestLedgerInterop:
    def test_serial_ledger_resumes_in_parallel(self, tmp_path):
        path = str(tmp_path / "ledger.json")
        serial = sweep_parameter(
            fast_spec(), "transition_density", VALUES, solver="power",
            checkpoint_path=path,
        )
        parallel = sweep_parameter(
            fast_spec(), "transition_density", VALUES, solver="power",
            jobs=2, checkpoint_path=path, resume=True,
        )
        assert parallel.resumed_points == len(VALUES)
        # replayed records are the ledger's bytes: identical timing too
        assert list(parallel) == list(serial)

    def test_parallel_ledger_resumes_serially(self, tmp_path):
        path = str(tmp_path / "ledger.json")
        parallel = sweep_parameter(
            fast_spec(), "transition_density", VALUES, solver="power",
            jobs=2, checkpoint_path=path,
        )
        serial = sweep_parameter(
            fast_spec(), "transition_density", VALUES, solver="power",
            checkpoint_path=path, resume=True,
        )
        assert serial.resumed_points == len(VALUES)
        assert list(serial) == list(parallel)


class TestCrashResume:
    def _run_until_killed(self, tmp_path, min_points=2):
        """Launch a warm parallel sweep, SIGKILL it after K points."""
        ledger = tmp_path / "ledger.json"
        script = tmp_path / "run_sweep.py"
        script.write_text(textwrap.dedent(f"""
            import sys
            sys.path.insert(0, {os.path.abspath(SRC)!r})
            from repro.cdr.sweep import sweep_parameter
            from repro.core.spec import CDRSpec
            spec = CDRSpec(
                n_phase_points=32, n_clock_phases=16, counter_length=2,
                max_run_length=2, nw_atoms=5,
            )
            sweep_parameter(
                spec, "transition_density", {VALUES!r}, solver="power",
                jobs=2, warm_start=True, checkpoint_path={str(ledger)!r},
            )
        """))
        proc = subprocess.Popen(
            [sys.executable, str(script)], start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    pytest.fail(
                        "sweep subprocess finished before it could be killed"
                    )
                completed = {}
                try:
                    with open(ledger, "r", encoding="utf-8") as fh:
                        data = json.load(fh)
                    completed = data.get("payload", {}).get("completed", {})
                except (FileNotFoundError, json.JSONDecodeError):
                    pass  # ledger not yet written / mid atomic replace
                if len(completed) >= min_points:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("ledger never reached the kill threshold")
        finally:
            # SIGKILL the whole process group: executor and workers alike
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            proc.wait()
        return str(ledger), len(completed)

    def test_killed_then_resumed_is_bit_identical(self, tmp_path):
        ledger, completed_at_kill = self._run_until_killed(tmp_path)
        assert 0 < completed_at_kill < len(VALUES)

        # resume with a DIFFERENT worker count: the warm-lineage layout
        # is pinned in the ledger's job fingerprint, not derived from jobs
        resumed = sweep_parameter(
            fast_spec(), "transition_density", VALUES, solver="power",
            jobs=3, warm_start=True, checkpoint_path=ledger, resume=True,
        )
        reference = sweep_parameter(
            fast_spec(), "transition_density", VALUES, solver="power",
            jobs=2, warm_start=True,
            checkpoint_path=str(tmp_path / "reference.json"),
        )
        assert resumed.resumed_points == completed_at_kill
        assert projections(resumed) == projections(reference)
        assert [r["warm_started"] for r in resumed] == [
            r["warm_started"] for r in reference
        ]
        assert (
            resumed.exec_stats["warm_starts"]
            == reference.exec_stats["warm_starts"]
        )

    def test_resumed_ledger_digests_verify(self, tmp_path):
        from repro.resilience import PointCheckpointer

        ledger, _ = self._run_until_killed(tmp_path)
        sweep_parameter(
            fast_spec(), "transition_density", VALUES, solver="power",
            jobs=2, warm_start=True, checkpoint_path=ledger, resume=True,
        )
        # a fresh resume re-verifies the ledger's integrity digest on load
        job = PointCheckpointer.peek_job(ledger)
        assert job["kind"] == "sweep" and "warm_lineages" in job
        checkpointer = PointCheckpointer(ledger, job)
        assert checkpointer.resume()
        assert len(checkpointer.completed) == len(VALUES)


class TestElasticCampaign:
    @staticmethod
    def _campaign(jobs=None):
        from repro.cdr import PhaseGrid, transition_run_length_source
        from repro.cdr.montecarlo import simulate_cdr_campaign
        from repro.noise import eye_opening_noise, sonet_drift_noise

        grid = PhaseGrid(32)
        return simulate_cdr_campaign(
            grid,
            eye_opening_noise(0.18, n_atoms=9),
            sonet_drift_noise(
                max_ui=grid.step, mean_ui=0.3 * grid.step,
                grid_step=grid.step,
            ),
            counter_length=2,
            phase_step_units=1,
            data_source=transition_run_length_source("data", 0.5, 3),
            n_symbols=400,
            seeds=[11, 12, 13, 14],
            jobs=jobs,
        )

    def test_parallel_campaign_matches_serial(self):
        serial = self._campaign()
        parallel = self._campaign(jobs=2)
        assert [projection(r) for r in parallel.records] == [
            projection(r) for r in serial.records
        ]
        assert serial.exec_stats is None
        assert parallel.exec_stats["completed"] == 4
