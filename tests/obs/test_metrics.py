"""Tests for the metrics registry and Prometheus exposition."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("events_total", "events")
        c.inc()
        c.inc(2.5)
        assert c.value() == pytest.approx(3.5)

    def test_labels_are_separate_series(self, registry):
        c = registry.counter("solves_total")
        c.inc(method="direct")
        c.inc(2, method="multigrid")
        assert c.value(method="direct") == 1
        assert c.value(method="multigrid") == 2
        assert c.value() == 0

    def test_negative_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name!", "")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value() == pytest.approx(13.0)
        g.dec(20)
        assert g.value() == pytest.approx(-7.0)


class TestHistogram:
    def test_observe_count_sum(self, registry):
        h = registry.histogram("lat_seconds", buckets=[0.1, 1.0])
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        assert h.count() == 3
        assert h.sum() == pytest.approx(5.55)

    def test_cumulative_buckets(self, registry):
        h = registry.histogram("lat_seconds", buckets=[0.1, 1.0])
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = "\n".join(h.render())
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1.0"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "", buckets=[])


class TestRegistry:
    def test_get_or_create_returns_same_instance(self, registry):
        a = registry.counter("x_total", "help text")
        b = registry.counter("x_total")
        assert a is b

    def test_type_conflict_raises(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_names_and_get(self, registry):
        registry.gauge("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]
        assert isinstance(registry.get("b"), Gauge)
        assert registry.get("missing") is None

    def test_reset(self, registry):
        registry.counter("a").inc()
        registry.reset()
        assert registry.names() == []

    def test_process_wide_registry(self):
        assert get_registry() is get_registry()


class TestPrometheusRendering:
    def test_full_exposition(self, registry):
        c = registry.counter("runs_total", "Completed runs")
        c.inc(3, kind="analysis")
        g = registry.gauge("rss_bytes", "Peak RSS")
        g.set(1.5e6)
        text = registry.render_prometheus()
        assert "# HELP runs_total Completed runs" in text
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{kind="analysis"} 3.0' in text
        assert "# TYPE rss_bytes gauge" in text
        assert "rss_bytes 1500000.0" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render_prometheus() == ""

    def test_label_escaping(self, registry):
        registry.counter("esc_total").inc(1, path='a"b\\c\nd')
        text = registry.render_prometheus()
        assert r'path="a\"b\\c\nd"' in text

    def test_to_dict_snapshot(self, registry):
        registry.counter("a_total").inc(2, k="v")
        h = registry.histogram("d_seconds", buckets=[1.0])
        h.observe(0.5)
        snap = registry.to_dict()
        assert snap["a_total"]["type"] == "counter"
        assert snap["a_total"]["samples"][0] == {"labels": {"k": "v"}, "value": 2.0}
        assert snap["d_seconds"]["samples"][0]["count"] == 1
        assert snap["d_seconds"]["buckets"] == [1.0]
