"""Unit tests for operator-level profiling (repro.obs.profile).

The contract under test: instrumentation is invisible when off (identity
pass-through, one contextvar lookup), exact when on (every protocol call
counted with bytes and seconds, capability probes unchanged), additive
nowhere (profiled and unprofiled runs produce bit-identical numerics),
and exportable (manifest section, Prometheus series, collapsed stacks,
speedscope JSON).
"""

import json

import numpy as np
import pytest
import scipy.sparse as sp

from repro.markov.chain import MarkovChain
from repro.markov.linop import AssembledOperator, as_operator, ensure_csr
from repro.markov.stationary import stationary_distribution
from repro.obs import build_run_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    PROFILE_SCHEMA,
    InstrumentedOperator,
    ProfileSession,
    get_profile_session,
    instrument_operator,
    profiled,
)


def _chain(n=24, seed=3):
    rng = np.random.default_rng(seed)
    P = rng.random((n, n)) + 0.05
    return MarkovChain(P / P.sum(axis=1, keepdims=True))


class TestInstrumentOperator:
    def test_identity_when_no_session(self):
        op = as_operator(_chain())
        assert instrument_operator(op, role="x") is op
        assert get_profile_session() is None

    def test_wraps_inside_session(self):
        op = as_operator(_chain())
        with profiled(metrics=False) as session:
            wrapped = instrument_operator(op, role="x")
            assert isinstance(wrapped, InstrumentedOperator)
            assert wrapped.inner is op
            assert get_profile_session() is session
        assert get_profile_session() is None

    def test_no_double_wrapping(self):
        op = as_operator(_chain())
        with profiled(metrics=False):
            w1 = instrument_operator(op, role="outer")
            w2 = instrument_operator(w1, role="inner")
            assert w2 is w1

    def test_counts_calls_seconds_and_bytes(self):
        op = as_operator(_chain(n=16))
        x = np.full(16, 1.0 / 16)
        with profiled(metrics=False) as session:
            w = instrument_operator(op, role="solve")
            w.rmatvec(x)
            w.rmatvec(x)
            w.matvec(x)
            w.diagonal()
        ops = session.snapshot()["operators"]["solve"]["ops"]
        assert ops["rmatvec"]["calls"] == 2
        assert ops["matvec"]["calls"] == 1
        assert ops["diagonal"]["calls"] == 1
        # rmatvec moves the argument and the result: 2 vectors of 16 f64.
        assert ops["rmatvec"]["bytes"] == 2 * 2 * 16 * 8
        assert ops["rmatvec"]["seconds"] >= 0.0

    def test_results_identical_to_bare_operator(self):
        mc = _chain()
        ref = stationary_distribution(mc, method="power").distribution
        with profiled(metrics=False):
            prof = stationary_distribution(mc, method="power").distribution
        np.testing.assert_array_equal(ref, prof)

    def test_capability_forwarding(self):
        # ensure_csr probes to_csr via getattr; the wrapper must expose it
        # for assembled operators and raise AttributeError for operators
        # without it, exactly like the bare operator.
        op = as_operator(_chain(n=8))
        with profiled(metrics=False) as session:
            w = instrument_operator(op, role="r")
            P = ensure_csr(w)
            assert sp.issparse(P)
            assert session.snapshot()["operators"]["r"]["ops"]["to_csr"]["calls"] == 1

        class _Bare:
            shape = (4, 4)

            def matvec(self, v):
                return v

            def rmatvec(self, x):
                return x

            def diagonal(self):
                return np.zeros(4)

            def row_sums(self):
                return np.ones(4)

        with profiled(metrics=False):
            w = instrument_operator(_Bare(), role="bare")
            with pytest.raises(AttributeError):
                w.to_csr

    def test_shape_and_repr(self):
        op = as_operator(_chain(n=9))
        with profiled(metrics=False):
            w = instrument_operator(op, role="s")
            assert w.shape == (9, 9)
            assert "InstrumentedOperator" in repr(w)


class TestSolverThreading:
    @pytest.mark.parametrize("method", ["power", "jacobi", "krylov", "direct"])
    def test_solver_traffic_is_attributed(self, method):
        mc = _chain(n=30, seed=11)
        with profiled(metrics=False) as session:
            res = stationary_distribution(mc, method=method, tol=1e-10)
        assert res.converged
        roles = session.snapshot()["operators"]
        assert f"solver.{method}" in roles

    def test_multigrid_per_level_attribution(self):
        mc = _chain(n=64, seed=5)
        with profiled(metrics=False) as session:
            res = stationary_distribution(
                mc, method="multigrid", tol=1e-10, coarsest_size=8
            )
        assert res.converged
        snapshot = session.snapshot()
        levels = [r for r in snapshot["operators"] if r.startswith("multigrid.L")]
        assert levels, snapshot["operators"]
        l0 = snapshot["operators"]["multigrid.L0"]["ops"]
        assert "smooth.pre" in l0 or "coarsest_solve" in l0

    def test_multigrid_profiled_matches_unprofiled(self):
        mc = _chain(n=80, seed=9)
        ref = stationary_distribution(
            mc, method="multigrid", tol=1e-11, coarsest_size=8
        ).distribution
        with profiled(metrics=False):
            prof = stationary_distribution(
                mc, method="multigrid", tol=1e-11, coarsest_size=8
            ).distribution
        np.testing.assert_allclose(prof, ref, atol=1e-9)

    def test_measure_kernels_attributed(self):
        from repro.scenarios.measures import tv_settling_time

        mc = _chain(n=20, seed=2)
        pi = stationary_distribution(mc).distribution
        start = np.zeros(20)
        start[0] = 1.0
        with profiled(metrics=False) as session:
            tv_settling_time(mc.P, start, pi, epsilon=1e-3, max_steps=5000)
        assert "measure.tv_settling" in session.snapshot()["operators"]


class TestSessionExports:
    def test_snapshot_schema_and_hot_path_ranking(self):
        session = ProfileSession(metrics=False)
        session.record("a", "matvec", 0.5, 100)
        session.record("b", "rmatvec", 2.0, 200)
        session.record("a", "matvec", 0.25, 100)
        snap = session.snapshot()
        assert snap["schema"] == PROFILE_SCHEMA
        hot = snap["hot_path"]
        assert hot[0]["role"] == "b" and hot[0]["seconds"] == 2.0
        assert hot[1] == {
            "role": "a", "op": "matvec", "calls": 2,
            "seconds": 0.75, "bytes": 200,
        }

    def test_metrics_emission(self):
        registry = MetricsRegistry()
        op = as_operator(_chain(n=8))
        x = np.full(8, 0.125)
        with profiled(registry=registry) as _:
            w = instrument_operator(op, role="solve")
            w.rmatvec(x)
        hist = registry.get("repro_operator_call_seconds")
        assert hist.count(role="solve", op="rmatvec") == 1
        counter = registry.get("repro_operator_bytes_total")
        assert counter.value(role="solve", op="rmatvec") == 2 * 8 * 8

    def test_manifest_embeds_active_session(self):
        mc = _chain(n=16)
        with profiled(metrics=False):
            stationary_distribution(mc, method="power")
            manifest = build_run_manifest(kind="test")
        profile = manifest["profile"]
        assert profile["schema"] == PROFILE_SCHEMA
        assert "solver.power" in profile["operators"]
        # And no profile section at all when nothing was profiled.
        assert build_run_manifest(kind="test")["profile"] is None

    def test_stack_capture_and_exports(self, tmp_path):
        def leaf():
            return sum(range(2000))

        def trunk():
            return [leaf() for _ in range(20)]

        with profiled(metrics=False, stacks=True) as session:
            trunk()
        stacks = session.collapsed_stacks()
        assert any("test_profile.py:leaf" in frame
                   for stack in stacks for frame in stack)

        collapsed = tmp_path / "out.collapsed"
        session.write_collapsed(str(collapsed))
        text = collapsed.read_text()
        for line in text.strip().splitlines():
            stack, _, value = line.rpartition(" ")
            assert stack and int(value) > 0

        ss = tmp_path / "out.speedscope.json"
        session.write_speedscope(str(ss))
        doc = json.loads(ss.read_text())
        assert doc["profiles"][0]["type"] == "sampled"
        assert len(doc["profiles"][0]["samples"]) == len(
            doc["profiles"][0]["weights"]
        )
        assert doc["shared"]["frames"]

    def test_stacks_export_requires_capture(self):
        session = ProfileSession(metrics=False, stacks=False)
        with pytest.raises(ValueError, match="stacks"):
            session.collapsed_stacks()


class TestMultigridCoarsestUnwrap:
    def test_instrumented_assembled_keeps_direct_coarsest(self):
        # A chain small enough to be its own coarsest level must get the
        # direct LU solve whether or not it is wrapped for profiling --
        # profiling must never flip the numerical path.
        from repro.markov.multigrid import MultigridSolver

        mc = _chain(n=12, seed=4)
        solver = MultigridSolver()
        ref = solver.solve(mc.P).distribution
        with profiled(metrics=False):
            wrapped = instrument_operator(
                AssembledOperator(sp.csr_matrix(mc.P)), role="t"
            )
            prof = solver._coarsest_solve(wrapped, np.full(12, 1 / 12))
        np.testing.assert_allclose(prof, ref, atol=1e-12)
