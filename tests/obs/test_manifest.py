"""Tests for run manifests (repro.obs.manifest)."""

import json

import numpy as np
import pytest

from repro import CDRSpec, analyze_cdr, obs
from repro.obs import (
    RUN_TRACE_SCHEMA,
    Tracer,
    build_run_manifest,
    digest_array,
    format_run_manifest,
    load_run_manifest,
    peak_rss_bytes,
    use_tracer,
    write_run_manifest,
)
from repro.obs.metrics import MetricsRegistry


def fast_spec():
    return CDRSpec(
        n_phase_points=64, n_clock_phases=16, counter_length=2,
        max_run_length=2, nw_std=0.08, nw_atoms=7,
    )


@pytest.fixture(scope="module")
def traced_run():
    tracer = Tracer()
    with use_tracer(tracer):
        analysis = analyze_cdr(fast_spec(), solver="direct")
    return tracer, analysis


class TestHelpers:
    def test_peak_rss_positive(self):
        rss = peak_rss_bytes()
        assert rss is None or rss > 1_000_000

    def test_digest_array_stable_and_sensitive(self):
        a = np.arange(6, dtype=float)
        assert digest_array(a) == digest_array(a.copy())
        assert digest_array(a) != digest_array(a.reshape(2, 3))
        assert digest_array(a) != digest_array(a + 1)


class TestBuildRunManifest:
    def test_acceptance_full_manifest(self, traced_run):
        """The PR's acceptance shape: nested spans for build / solve /
        measures, embedded solver-monitor events, and a
        Prometheus-renderable metrics snapshot."""
        tracer, analysis = traced_run
        m = build_run_manifest(
            kind="analysis", spec=analysis.spec, analysis=analysis,
            tracer=tracer,
        )
        assert m["schema"] == RUN_TRACE_SCHEMA

        # nested spans: cdr.analyze > {cdr.build_tpm, markov.solve, cdr.measures}
        roots = {s["name"]: s for s in m["spans"]}
        assert "cdr.analyze" in roots
        children = {c["name"] for c in roots["cdr.analyze"]["children"]}
        assert {"cdr.build_tpm", "markov.solve", "cdr.measures"} <= children
        assert m["stages"]["cdr.build_tpm"] > 0.0
        assert m["stages"]["markov.solve"] > 0.0

        # embedded solver trace with per-iteration events
        trace = m["solver_trace"]
        assert trace["schema"] == "repro.solver-trace/1"
        assert trace["iterations"] == len(trace["events"]) >= 1
        assert trace["method"] == analysis.solver_result.method

        # metrics snapshot in both forms
        assert "repro_analyses_total" in m["metrics"]["snapshot"]
        assert "# TYPE repro_analyses_total counter" in m["metrics"]["prometheus"]

        # environment + digests
        assert m["versions"]["repro"]
        assert m["spec"]["counter_length"] == 2
        assert len(m["digests"]["stationary_sha256"]) == 64
        assert m["results"]["ber"] == analysis.ber

    def test_minimal_manifest(self):
        m = build_run_manifest(kind="benchmark", registry=MetricsRegistry())
        assert m["schema"] == RUN_TRACE_SCHEMA
        assert m["spans"] == []
        assert m["results"] == {}
        assert m["spec"] is None

    def test_results_merge_over_analysis(self, traced_run):
        tracer, analysis = traced_run
        m = build_run_manifest(
            analysis=analysis, tracer=tracer, results={"ber": 42.0, "extra": 1},
        )
        assert m["results"]["ber"] == 42.0
        assert m["results"]["extra"] == 1

    def test_json_serializable(self, traced_run):
        tracer, analysis = traced_run
        m = build_run_manifest(analysis=analysis, tracer=tracer)
        json.dumps(m)


class TestWriteLoadFormat:
    def test_roundtrip(self, tmp_path, traced_run):
        tracer, analysis = traced_run
        m = build_run_manifest(
            kind="analysis", spec=analysis.spec, analysis=analysis,
            tracer=tracer,
        )
        path = tmp_path / "run.json"
        write_run_manifest(str(path), m)
        loaded = load_run_manifest(str(path))
        assert loaded["schema"] == RUN_TRACE_SCHEMA
        assert loaded["digests"] == m["digests"]

    def test_write_rejects_non_manifest(self, tmp_path):
        with pytest.raises(ValueError):
            write_run_manifest(str(tmp_path / "x.json"), {"schema": "bogus"})

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"schema": "something-else/9"}')
        with pytest.raises(ValueError):
            load_run_manifest(str(path))

    def test_format_renders_sections(self, traced_run):
        tracer, analysis = traced_run
        m = build_run_manifest(
            kind="analysis", spec=analysis.spec, analysis=analysis,
            tracer=tracer,
        )
        text = format_run_manifest(m)
        assert RUN_TRACE_SCHEMA in text
        assert "spans:" in text
        assert "cdr.build_tpm" in text
        assert "markov.solve" in text
        assert "solver trace:" in text
        assert "metrics (" in text
        assert "stationary_sha256=" in text

    def test_public_api_reexported(self):
        for name in ("Tracer", "span", "use_tracer", "get_registry",
                     "build_run_manifest", "RUN_TRACE_SCHEMA"):
            assert hasattr(obs, name)


class TestFailuresByCause:
    """Executor stats and failure grouping in the pretty-printed manifest."""

    def _manifest(self, results):
        return build_run_manifest(
            kind="sweep", registry=MetricsRegistry(), results=results
        )

    def test_exec_stats_rendered(self):
        m = self._manifest({
            "exec_stats": {
                "jobs": 4, "mode": "pool", "completed": 10, "failed": 0,
                "retries": 2, "timeouts": 1, "workers_lost": 1,
                "respawns": 1, "warm_starts": 6,
            },
        })
        text = format_run_manifest(m)
        assert "executor: jobs=4  mode=pool" in text
        assert "retries=2" in text and "workers_lost=1" in text
        assert "warm_starts=6" in text

    def test_failures_grouped_by_taxonomy_and_type(self):
        m = self._manifest({
            "failed_points": [
                {"index": 3, "error_type": "PointTimeout",
                 "taxonomy": "PointTimeout", "message": "point 3 timed out"},
                {"index": 7, "error_type": "PointTimeout",
                 "taxonomy": "PointTimeout", "message": "point 7 timed out"},
                {"index": 9, "error_type": "ValueError",
                 "taxonomy": "external", "message": "bad spec"},
            ],
        })
        text = format_run_manifest(m)
        assert "failures by cause (3 point(s)):" in text
        assert "PointTimeout: 2 point(s) [3, 7]" in text
        assert "ValueError: 1 point(s) [9]" in text
        assert "e.g. point 3 timed out" in text

    def test_failed_seeds_also_grouped(self):
        m = self._manifest({
            "failed_seeds": [
                {"index": 0, "seed": 11, "error_type": "RuntimeError",
                 "taxonomy": "external", "message": "sim blew up"},
            ],
        })
        assert "failures by cause (1 point(s)):" in format_run_manifest(m)

    def test_no_failures_no_section(self):
        text = format_run_manifest(self._manifest({"records": []}))
        assert "failures by cause" not in text
        assert "executor:" not in text
