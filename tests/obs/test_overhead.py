"""Acceptance: instrumentation overhead on a default-spec analysis < 5%.

The span layer collapses to a single context-variable lookup when no
tracer is active, and to ~a dozen small object allocations when one is.
Either way the cost must vanish next to the numerical work.  Measured as
min-of-N wall time of ``analyze_cdr(CDRSpec())`` with an active tracer
versus without one (min filters scheduler noise).
"""

import time

from repro import CDRSpec, analyze_cdr
from repro.obs import Tracer, use_tracer


def _min_wall(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_tracing_overhead_below_five_percent():
    spec = CDRSpec()  # the paper's default design point
    run = lambda: analyze_cdr(spec, solver="auto")

    def traced():
        with use_tracer(Tracer()):
            run()

    run()  # warm caches (imports, BLAS threads) outside the measurement
    baseline = _min_wall(run, 5)
    instrumented = _min_wall(traced, 5)
    overhead = (instrumented - baseline) / baseline
    assert overhead < 0.05, (
        f"instrumented {instrumented:.3f}s vs baseline {baseline:.3f}s "
        f"({overhead:+.1%} overhead)"
    )


def test_resilient_happy_path_overhead_below_five_percent():
    # Guards + fallback bookkeeping are per-iteration float compares; on a
    # convergent solve the whole resilient path must stay within the same
    # 5% envelope as tracing.
    spec = CDRSpec()
    plain = lambda: analyze_cdr(spec, solver="auto")
    resilient = lambda: analyze_cdr(spec, solver="auto", resilience=True)

    plain()
    resilient()  # warm the resilience imports too
    baseline = _min_wall(plain, 5)
    guarded = _min_wall(resilient, 5)
    overhead = (guarded - baseline) / baseline
    assert overhead < 0.05, (
        f"resilient {guarded:.3f}s vs baseline {baseline:.3f}s "
        f"({overhead:+.1%} overhead)"
    )
