"""Acceptance: instrumentation overhead on a default-spec analysis < 5%.

The span layer collapses to a single context-variable lookup when no
tracer is active, and to ~a dozen small object allocations when one is.
Either way the cost must vanish next to the numerical work.  Measured as
min-of-N wall time of ``analyze_cdr(CDRSpec())`` with an active tracer
versus without one (min filters scheduler noise).
"""

import time

import numpy as np

from repro import CDRSpec, analyze_cdr
from repro.markov.linop import as_operator
from repro.obs import Tracer, use_tracer
from repro.obs.profile import instrument_operator, profiled


def _min_wall(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_tracing_overhead_below_five_percent():
    spec = CDRSpec()  # the paper's default design point
    run = lambda: analyze_cdr(spec, solver="auto")

    def traced():
        with use_tracer(Tracer()):
            run()

    run()  # warm caches (imports, BLAS threads) outside the measurement
    baseline = _min_wall(run, 5)
    instrumented = _min_wall(traced, 5)
    overhead = (instrumented - baseline) / baseline
    assert overhead < 0.05, (
        f"instrumented {instrumented:.3f}s vs baseline {baseline:.3f}s "
        f"({overhead:+.1%} overhead)"
    )


def test_resilient_happy_path_overhead_below_five_percent():
    # Guards + fallback bookkeeping are per-iteration float compares; on a
    # convergent solve the whole resilient path must stay within the same
    # 5% envelope as tracing.
    spec = CDRSpec()
    plain = lambda: analyze_cdr(spec, solver="auto")
    resilient = lambda: analyze_cdr(spec, solver="auto", resilience=True)

    plain()
    resilient()  # warm the resilience imports too
    baseline = _min_wall(plain, 5)
    guarded = _min_wall(resilient, 5)
    overhead = (guarded - baseline) / baseline
    assert overhead < 0.05, (
        f"resilient {guarded:.3f}s vs baseline {baseline:.3f}s "
        f"({overhead:+.1%} overhead)"
    )


def test_profiling_off_overhead_below_five_percent():
    # instrument_operator is compiled into every solver dispatch and every
    # measure kernel.  With no active ProfileSession it must collapse to a
    # contextvar lookup + None check -- the baseline-scenario analysis may
    # not slow down just because the hook exists.  Both arms below run the
    # exact same code (the hook is unconditionally present), so this pins
    # the absolute cost of the disabled hook against an active-session run
    # and, more importantly, fails if someone makes the no-session path
    # allocate.
    spec = CDRSpec()
    run = lambda: analyze_cdr(spec, solver="auto")

    def under_session():
        with profiled(metrics=False):
            run()

    run()  # warm caches outside the measurement
    baseline = _min_wall(run, 5)
    counting = _min_wall(under_session, 5)
    overhead = (counting - baseline) / baseline
    assert overhead < 0.05, (
        f"profiled {counting:.3f}s vs baseline {baseline:.3f}s "
        f"({overhead:+.1%} overhead)"
    )


def test_disabled_hook_cost_is_nanoscale():
    # Direct micro-check of the no-session fast path: a million identity
    # pass-throughs must complete in well under a second (~100ns each),
    # i.e. the hook is one ContextVar.get() and a None test.
    op = as_operator(np.eye(4))
    t0 = time.perf_counter()
    for _ in range(1_000_000):
        instrument_operator(op, role="noop")
    per_call = (time.perf_counter() - t0) / 1e6
    assert per_call < 2e-6, f"disabled hook costs {per_call * 1e9:.0f}ns/call"
