"""Tests for the span tracer (repro.obs.tracing)."""

import pytest

from repro.obs.tracing import (
    _NULL_SPAN,
    Span,
    Tracer,
    current_span,
    get_tracer,
    span,
    use_tracer,
)


class TestSpan:
    def test_wall_and_cpu_time(self):
        s = Span(name="x", start=1.0, cpu_start=2.0, end=3.5, cpu_end=2.25)
        assert s.wall_time == pytest.approx(2.5)
        assert s.cpu_time == pytest.approx(0.25)
        assert s.finished

    def test_finish_idempotent(self):
        s = Span(name="x", start=0.0, cpu_start=0.0)
        s.finish()
        end = s.end
        s.finish()
        assert s.end == end

    def test_attributes(self):
        s = Span(name="x", start=0.0, cpu_start=0.0)
        s.set_attribute("a", 1).set_attributes(b=2, c="z")
        assert s.attributes == {"a": 1, "b": 2, "c": "z"}

    def test_iter_and_find(self):
        root = Span(name="root", start=0.0, cpu_start=0.0)
        child = Span(name="child", start=0.1, cpu_start=0.0)
        grand = Span(name="leaf", start=0.2, cpu_start=0.0)
        child.children.append(grand)
        root.children.append(child)
        assert [s.name for s in root.iter_spans()] == ["root", "child", "leaf"]
        assert root.find("leaf") is grand
        assert root.find("missing") is None

    def test_stage_seconds_accumulates_duplicates(self):
        root = Span(name="root", start=0.0, cpu_start=0.0, end=10.0, cpu_end=0.0)
        for t0, t1 in [(0.0, 1.0), (2.0, 5.0)]:
            root.children.append(
                Span(name="work", start=t0, cpu_start=0.0, end=t1, cpu_end=0.0)
            )
        assert root.stage_seconds() == {"work": pytest.approx(4.0)}

    def test_to_dict_offsets(self):
        root = Span(name="root", start=5.0, cpu_start=0.0, end=7.0, cpu_end=1.0)
        root.children.append(
            Span(name="c", start=5.5, cpu_start=0.0, end=6.0, cpu_end=0.0)
        )
        d = root.to_dict()
        assert d["start_offset_s"] == 0.0
        assert d["wall_s"] == pytest.approx(2.0)
        assert d["children"][0]["start_offset_s"] == pytest.approx(0.5)


class TestTracer:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", n=3) as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None
        assert len(tracer.roots) == 1
        assert tracer.roots[0] is outer
        assert outer.children == [inner]
        assert inner.attributes == {"n": 3}

    def test_multiple_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r.name for r in tracer.roots] == ["a", "b"]
        dicts = tracer.to_dicts()
        assert len(dicts) == 2
        assert dicts[1]["start_offset_s"] >= 0.0

    def test_exception_sets_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        root = tracer.roots[0]
        assert root.finished
        assert root.attributes["error"] == "RuntimeError"

    def test_find(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
        assert tracer.find("leaf").name == "leaf"
        assert tracer.find("missing") is None


class TestModuleLevelSpan:
    def test_noop_without_tracer(self):
        assert get_tracer() is None
        s = span("anything", n=1)
        assert s is _NULL_SPAN
        with s as inner:
            inner.set_attribute("a", 1).set_attributes(b=2)
        assert current_span() is _NULL_SPAN

    def test_records_with_active_tracer(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with span("stage", n=5) as s:
                assert current_span() is s
        assert get_tracer() is None
        assert tracer.roots[0].name == "stage"
        assert tracer.roots[0].attributes == {"n": 5}

    def test_nested_use_tracer_restores(self):
        outer, inner = Tracer(), Tracer()
        with use_tracer(outer):
            with use_tracer(inner):
                with span("x"):
                    pass
            assert get_tracer() is outer
        assert inner.roots and not outer.roots

    def test_library_instrumentation_lands_in_tracer(self):
        from repro import CDRSpec

        tracer = Tracer()
        with use_tracer(tracer):
            CDRSpec(
                n_phase_points=64, n_clock_phases=16, counter_length=2,
                max_run_length=2, nw_std=0.08, nw_atoms=7,
            ).build_model()
        build = tracer.find("cdr.build_tpm")
        assert build is not None
        assert build.attributes["n_states"] == 384
        assert build.attributes["nnz"] > 0
