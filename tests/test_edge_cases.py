"""Edge-case and failure-injection tests across modules.

Targets the guard rails: absorbing states in iterative solvers, solver
non-convergence reporting, exploration limits, degenerate noise, and
other paths the happy-path suites do not reach.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.markov import (
    MarkovChain,
    solve_gauss_seidel,
    solve_jacobi,
    solve_krylov,
    solve_multigrid,
    solve_power,
    stationary_distribution,
)


class TestSolverGuards:
    def test_jacobi_with_absorbing_state_stays_finite(self):
        """An absorbing state zeroes the Jacobi diagonal; the floor guard
        must keep the sweep finite and the iterate a distribution."""
        P = np.array([[1.0, 0.0], [0.5, 0.5]])
        res = solve_jacobi(MarkovChain(P).P, tol=1e-10, max_iter=200)
        assert np.all(np.isfinite(res.distribution))
        assert res.distribution.sum() == pytest.approx(1.0)
        # the absorbing state carries all stationary mass
        assert res.distribution[0] == pytest.approx(1.0, abs=1e-6)

    def test_gauss_seidel_with_absorbing_state(self):
        P = np.array([[1.0, 0.0], [0.5, 0.5]])
        res = solve_gauss_seidel(MarkovChain(P).P, tol=1e-10, max_iter=200)
        assert np.all(np.isfinite(res.distribution))
        assert res.distribution[0] == pytest.approx(1.0, abs=1e-6)

    def test_krylov_nonconvergence_reported(self, two_state_chain=None):
        from repro.markov import random_chain

        chain = random_chain(60, np.random.default_rng(0))
        res = solve_krylov(chain.P, tol=1e-14, max_iter=1, preconditioner=None)
        # one iteration cannot reach 1e-14; must report, not raise
        assert not res.converged or res.residual < 1e-12

    def test_power_max_iter_cap(self):
        sticky = MarkovChain(np.array([[0.999, 0.001], [0.001, 0.999]]))
        res = solve_power(
            sticky.P, tol=1e-15, max_iter=5, x0=np.array([0.9, 0.1])
        )
        assert not res.converged
        assert res.iterations == 5

    def test_multigrid_max_cycles_cap(self):
        n = 400
        rows, cols, vals = [], [], []
        for i in range(n):
            up = 0.001 if i < n - 1 else 0.0
            down = 0.0011 if i > 0 else 0.0
            for j, p in ((i - 1, down), (i, 1 - up - down), (i + 1, up)):
                if p > 0:
                    rows.append(i); cols.append(j); vals.append(p)
        chain = MarkovChain(sp.coo_matrix((vals, (rows, cols)), shape=(n, n)))
        res = solve_multigrid(chain.P, tol=1e-16, max_cycles=2, coarsest_size=16)
        assert not res.converged
        assert res.iterations == 2

    def test_frontend_forwards_damping(self):
        ring = np.zeros((4, 4))
        for i in range(4):
            ring[i, (i + 1) % 4] = 1.0
        res = stationary_distribution(
            MarkovChain(ring), method="power", damping=0.5, tol=1e-11,
            x0=np.array([0.7, 0.1, 0.1, 0.1]),
        )
        assert res.converged


class TestDegenerateNoise:
    def test_deterministic_everything_still_builds(self):
        """Zero noise everywhere: a deterministic limit cycle.  The chain
        is periodic/reducible but must still build and be row-stochastic."""
        import warnings

        from repro.cdr import PhaseGrid, build_cdr_chain
        from repro.noise import DiscreteDistribution

        grid = PhaseGrid(16)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            model = build_cdr_chain(
                grid=grid,
                nw=DiscreteDistribution.delta(0.0),
                nr=DiscreteDistribution.delta(0.0),
                counter_length=1,
                phase_step_units=1,
                transition_density=1.0,
                max_run_length=1,
            )
        np.testing.assert_allclose(model.chain.row_sums(), 1.0, atol=1e-12)

    def test_single_atom_nw(self):
        from repro.cdr import PhaseGrid, build_cdr_chain
        from repro.noise import DiscreteDistribution

        grid = PhaseGrid(16)
        model = build_cdr_chain(
            grid=grid,
            nw=DiscreteDistribution.delta(0.0),
            nr=DiscreteDistribution([-grid.step, grid.step], [0.5, 0.5]),
            counter_length=2,
            phase_step_units=1,
        )
        # sgn(phi + 0) is deterministic per grid point
        masses = model.sign_masses
        assert set(np.unique(masses[1])) <= {0.0, 1.0}


class TestMonteCarloEdges:
    def _params(self):
        from repro.cdr import PhaseGrid
        from repro.noise import DiscreteDistribution, eye_opening_noise

        grid = PhaseGrid(32)
        return dict(
            grid=grid,
            nw=eye_opening_noise(0.1, n_atoms=7),
            nr=DiscreteDistribution(
                [-grid.step, 0.0, grid.step], [0.25, 0.5, 0.25]
            ),
            counter_length=2,
            phase_step_units=2,
        )

    def test_warmup_discards_acquisition_errors(self):
        """Starting half a UI off, the no-warmup run must report more
        errors than the warmed-up run (the acquisition burst)."""
        from repro.cdr import simulate_cdr, transition_run_length_source

        params = self._params()
        src = transition_run_length_source("d", 0.5, 2)
        cold = simulate_cdr(
            data_source=src, n_symbols=3000, rng=np.random.default_rng(1),
            initial_phase_index=0, warmup_symbols=0, **params,
        )
        warm = simulate_cdr(
            data_source=src, n_symbols=3000, rng=np.random.default_rng(1),
            initial_phase_index=0, warmup_symbols=500, **params,
        )
        assert cold.n_errors >= warm.n_errors

    def test_continuous_mode_custom_sigma(self):
        from repro.cdr import simulate_cdr, transition_run_length_source

        params = self._params()
        src = transition_run_length_source("d", 0.5, 2)
        quiet = simulate_cdr(
            data_source=src, n_symbols=20_000, rng=np.random.default_rng(2),
            mode="continuous", nw_std_continuous=0.01, **params,
        )
        loud = simulate_cdr(
            data_source=src, n_symbols=20_000, rng=np.random.default_rng(2),
            mode="continuous", nw_std_continuous=0.25, **params,
        )
        assert loud.ber > quiet.ber

    def test_phase_rms_reported(self):
        from repro.cdr import simulate_cdr, transition_run_length_source

        params = self._params()
        src = transition_run_length_source("d", 0.5, 2)
        res = simulate_cdr(
            data_source=src, n_symbols=5_000, rng=np.random.default_rng(3),
            **params,
        )
        assert 0.0 < res.phase_rms < 0.5


class TestNetworkLimits:
    def test_max_states_exact_boundary(self):
        from repro.fsm import FSM, FSMNetwork, IIDSource
        from repro.noise import DiscreteDistribution

        net = FSMNetwork()
        net.add_source(IIDSource("b", DiscreteDistribution([0.0, 1.0], [0.5, 0.5])))
        counter = FSM.moore(
            "c", list(range(4)), 0,
            transition_fn=lambda s, u: (s + int(u)) % 4,
            state_output_fn=lambda s: s,
        )
        net.add_machine(counter, lambda env: env["b"])
        # 8 reachable states exactly: allowed at the limit
        nc = net.compile(max_states=8)
        assert nc.n_states == 8
        with pytest.raises(RuntimeError):
            net.compile(max_states=7)


class TestSpecEdges:
    def test_span_sigmas_controls_support(self):
        from repro import CDRSpec

        wide = CDRSpec(nw_span_sigmas=6.0).nw_distribution()
        narrow = CDRSpec(nw_span_sigmas=3.0).nw_distribution()
        assert wide.support[1] > narrow.support[1]

    def test_counter_one_spec_works(self):
        from repro import CDRSpec, analyze_cdr

        spec = CDRSpec(
            n_phase_points=64, n_clock_phases=16, counter_length=1,
            max_run_length=2, nw_std=0.08, nw_atoms=7,
        )
        analysis = analyze_cdr(spec, solver="direct")
        assert analysis.model.n_counter_states == 1
        assert 0.0 <= analysis.ber <= 1.0

    def test_sweep_with_multigrid_solver(self):
        from repro import CDRSpec, sweep_parameter

        spec = CDRSpec(
            n_phase_points=64, n_clock_phases=16, counter_length=2,
            max_run_length=2, nw_std=0.08, nw_atoms=7,
        )
        records = sweep_parameter(
            spec, "nw_std", [0.05, 0.1], solver="multigrid", tol=1e-9
        )
        assert len(records) == 2
        assert records[1]["ber"] > records[0]["ber"]
