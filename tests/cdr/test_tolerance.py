"""Tests for the jitter-tolerance bisection."""

import pytest

from repro import (
    CDRSpec,
    analyze_cdr,
    bisect_tolerance,
    random_jitter_tolerance,
    sinusoidal_jitter_tolerance,
)


def tolerance_spec():
    return CDRSpec(
        n_phase_points=64,
        n_clock_phases=16,
        counter_length=4,
        max_run_length=2,
        nw_std=0.02,
        nw_atoms=9,
        nr_max=0.008,
        nr_mean=0.002,
    )


class TestBisectTolerance:
    def test_known_threshold(self):
        # synthetic monotone BER model: ber(x) = x^2
        res = bisect_tolerance(
            lambda x: x * x, ber_target=0.25, lo=0.01, hi=1.0,
            rel_tol=0.001, parameter="x",
        )
        assert res.tolerance == pytest.approx(0.5, rel=0.01)
        assert res.ber_at_tolerance <= 0.25

    def test_bracket_limited(self):
        res = bisect_tolerance(lambda x: 0.0, 0.5, 0.0, 2.0)
        assert res.tolerance == 2.0
        assert res.n_evaluations == 2

    def test_fails_at_floor(self):
        with pytest.raises(ValueError, match="misses the BER target"):
            bisect_tolerance(lambda x: 1e-1, 1e-3, 0.01, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="ber_target"):
            bisect_tolerance(lambda x: x, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError, match="lo < hi"):
            bisect_tolerance(lambda x: x, 0.5, 1.0, 0.5)

    def test_summary(self):
        res = bisect_tolerance(lambda x: x, 0.5, 0.01, 1.0, parameter="p")
        assert "p tolerance" in res.summary()


class TestRandomJitterTolerance:
    def test_found_tolerance_is_consistent(self):
        spec = tolerance_spec()
        res = random_jitter_tolerance(
            spec, ber_target=1e-9, lo=0.01, hi=0.3, solver="direct",
            rel_tol=0.05,
        )
        # verify the boundary: passing at the tolerance...
        assert res.ber_at_tolerance <= 1e-9
        # ...failing a bit above it.
        above = analyze_cdr(
            spec.replace(nw_std=res.tolerance * 1.3), solver="direct"
        )
        assert above.ber > 1e-9
        # and the tolerance is a plausible eye budget
        assert 0.01 < res.tolerance < 0.3


class TestSinusoidalJitterTolerance:
    def test_sj_tolerance_exceeds_nothing_budget(self):
        spec = tolerance_spec()
        res = sinusoidal_jitter_tolerance(
            spec, ber_target=1e-9, lo=0.01, hi=0.45, solver="direct",
            rel_tol=0.05,
        )
        assert res.parameter == "SJ amplitude"
        assert res.ber_at_tolerance <= 1e-9
        # Bounded SJ is more benign than Gaussian RJ of equal rms, so the
        # SJ amplitude tolerance should exceed the RJ rms tolerance.
        rj = random_jitter_tolerance(
            spec, ber_target=1e-9, lo=0.01, hi=0.3, solver="direct",
            rel_tol=0.05,
        )
        assert res.tolerance > rj.tolerance
