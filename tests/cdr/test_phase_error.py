"""Tests for the phase grid and accumulator FSM (S17)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdr import PhaseGrid, phase_accumulator_fsm
from repro.noise import DiscreteDistribution


class TestPhaseGrid:
    def test_basic_properties(self):
        g = PhaseGrid(8)
        assert g.n_points == 8
        assert g.step == pytest.approx(0.125)
        assert len(g.values) == 8
        assert "n_points=8" in repr(g)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            PhaseGrid(1)

    def test_values_are_cell_centers(self):
        g = PhaseGrid(4)
        np.testing.assert_allclose(g.values, [-0.375, -0.125, 0.125, 0.375])

    def test_values_symmetric_about_zero(self):
        g = PhaseGrid(16)
        np.testing.assert_allclose(g.values, -g.values[::-1], atol=1e-15)

    def test_values_within_ui(self):
        g = PhaseGrid(10)
        assert g.values.min() > -0.5
        assert g.values.max() < 0.5

    def test_value_of(self):
        g = PhaseGrid(4)
        assert g.value_of(0) == pytest.approx(-0.375)

    def test_index_of_roundtrip(self):
        g = PhaseGrid(32)
        for m in range(32):
            assert g.index_of(g.value_of(m)) == m

    def test_index_of_wraps(self):
        g = PhaseGrid(8)
        assert g.index_of(0.6) == g.index_of(-0.4)

    def test_steps_of(self):
        g = PhaseGrid(100)
        assert g.steps_of(0.031) == 3
        assert g.steps_of(-0.005) == 0
        assert g.steps_of(-0.015) == -2  # round-half-even on exact .5 steps

    def test_wrap_value(self):
        assert PhaseGrid.wrap_value(0.5) == pytest.approx(-0.5)
        assert PhaseGrid.wrap_value(-0.6) == pytest.approx(0.4)
        assert PhaseGrid.wrap_value(0.3) == pytest.approx(0.3)
        assert PhaseGrid.wrap_value(1.7) == pytest.approx(-0.3)

    def test_shift_index_no_wrap(self):
        g = PhaseGrid(8)
        assert g.shift_index(3, 2) == (5, 0)

    def test_shift_index_wrap_up(self):
        g = PhaseGrid(8)
        assert g.shift_index(7, 1) == (0, 1)
        assert g.shift_index(7, 9) == (0, 2)

    def test_shift_index_wrap_down(self):
        g = PhaseGrid(8)
        assert g.shift_index(0, -1) == (7, -1)
        assert g.shift_index(0, -9) == (7, -2)

    def test_shift_indices_vectorized(self):
        g = PhaseGrid(8)
        idx, wraps = g.shift_indices(np.array([0, 4, 7]), 1)
        np.testing.assert_array_equal(idx, [1, 5, 0])
        np.testing.assert_array_equal(wraps, [0, 0, 1])

    @given(
        st.integers(min_value=2, max_value=64),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=-200, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_shift_index_consistent_with_arithmetic(self, n, m, steps):
        g = PhaseGrid(n)
        m = m % n
        idx, wraps = g.shift_index(m, steps)
        assert 0 <= idx < n
        assert idx + wraps * n == m + steps

    def test_quantize_to_steps_values_are_integers(self):
        g = PhaseGrid(100)
        d = DiscreteDistribution([0.003, -0.017], [0.5, 0.5])
        q = g.quantize_to_steps(d)
        for v in q.values:
            assert v == int(v)

    def test_quantize_to_steps_preserves_mean(self):
        g = PhaseGrid(100)
        d = DiscreteDistribution([0.0031, -0.0172], [0.4, 0.6])
        q = g.quantize_to_steps(d)
        assert q.mean() * g.step == pytest.approx(d.mean(), abs=1e-12)

    def test_quantize_small_drift_survives(self):
        """A drift far below one grid step must not vanish (mean-preserving
        split): this is the property the paper's fine discretization of n_r
        is all about."""
        g = PhaseGrid(50)  # step 0.02
        d = DiscreteDistribution.delta(0.002)  # a tenth of a step
        q = g.quantize_to_steps(d)
        assert q.mean() * g.step == pytest.approx(0.002, abs=1e-15)
        assert q.pmf(1.0) == pytest.approx(0.1, abs=1e-12)


class TestPhaseAccumulatorFSM:
    def test_moore_output_is_phase_value(self):
        g = PhaseGrid(8)
        fsm = phase_accumulator_fsm("phase", g, phase_step_units=1)
        assert fsm.is_moore
        assert fsm.moore_output(3) == pytest.approx(g.value_of(3))

    def test_transition_applies_correction_and_drift(self):
        g = PhaseGrid(8)
        fsm = phase_accumulator_fsm("phase", g, phase_step_units=2)
        # direction +1 (phase too late -> step earlier), drift +1
        assert fsm.next_state(4, (1, 1)) == 3
        # pure drift
        assert fsm.next_state(4, (0, 1)) == 5

    def test_transition_wraps(self):
        g = PhaseGrid(8)
        fsm = phase_accumulator_fsm("phase", g, phase_step_units=1)
        assert fsm.next_state(7, (0, 1)) == 0
        assert fsm.next_state(0, (1, 0)) == 7

    def test_initial_state_default_center(self):
        g = PhaseGrid(8)
        fsm = phase_accumulator_fsm("phase", g, phase_step_units=1)
        assert fsm.initial_state == 4

    def test_validation(self):
        g = PhaseGrid(8)
        with pytest.raises(ValueError):
            phase_accumulator_fsm("phase", g, phase_step_units=0)
