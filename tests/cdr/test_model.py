"""Tests for the vectorized CDR chain builder (S18)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cdr import (
    PhaseGrid,
    bernoulli_transition_source,
    build_cdr_chain,
    transition_run_length_source,
)
from repro.fsm import IIDSource
from repro.markov import classify, solve_direct, solve_multigrid
from repro.noise import DiscreteDistribution, eye_opening_noise, sonet_drift_noise


def small_model(**overrides):
    grid = overrides.pop("grid", PhaseGrid(32))
    params = dict(
        grid=grid,
        nw=overrides.pop("nw", eye_opening_noise(0.06, n_atoms=7)),
        nr=overrides.pop(
            "nr", sonet_drift_noise(max_ui=grid.step, mean_ui=0.25 * grid.step,
                                    grid_step=grid.step)
        ),
        counter_length=overrides.pop("counter_length", 3),
        phase_step_units=overrides.pop("phase_step_units", 2),
    )
    params.update(overrides)
    return build_cdr_chain(**params)


class TestBuilderBasics:
    def test_state_count(self):
        model = small_model()
        # default source: L=3 -> D=3; N=3 -> C=5; M=32
        assert model.n_states == 3 * 5 * 32
        assert model.n_data_states == 3
        assert model.n_counter_states == 5
        assert model.n_phase_points == 32

    def test_chain_is_stochastic(self):
        model = small_model()
        np.testing.assert_allclose(model.chain.row_sums(), 1.0, atol=1e-9)

    def test_chain_has_unique_ergodic_class(self):
        """The product space may contain a few unreachable combinations
        (the paper: the reachable state space "is a subset of the
        Cartesian product"), but there must be exactly one recurrent
        class, and it must be aperiodic, so the stationary distribution is
        unique."""
        from repro.markov import period

        model = small_model()
        s = classify(model.chain)
        assert len(s.recurrent) == 1
        assert s.recurrent[0].size >= 0.9 * model.n_states
        assert period(model.chain, int(s.recurrent[0][0])) == 1

    def test_form_time_recorded(self):
        assert small_model().form_time > 0.0

    def test_repr(self):
        assert "CDRChainModel" in repr(small_model())

    def test_validation(self):
        grid = PhaseGrid(32)
        nw = eye_opening_noise(0.05, n_atoms=5)
        nr = DiscreteDistribution.delta(0.0)
        with pytest.raises(ValueError, match="counter_length"):
            build_cdr_chain(grid, nw, nr, counter_length=0, phase_step_units=1)
        with pytest.raises(ValueError, match="phase_step_units"):
            build_cdr_chain(grid, nw, nr, counter_length=2, phase_step_units=0)

    def test_rejects_non_indicator_source(self):
        grid = PhaseGrid(16)
        bad = IIDSource("data", DiscreteDistribution([0.0, 2.0], [0.5, 0.5]))
        with pytest.raises(ValueError, match="transition indicators"):
            build_cdr_chain(
                grid,
                eye_opening_noise(0.05, n_atoms=5),
                DiscreteDistribution.delta(0.0),
                counter_length=2,
                phase_step_units=1,
                data_source=bad,
            )

    def test_rejects_moves_exceeding_grid(self):
        grid = PhaseGrid(4)
        with pytest.raises(ValueError, match="exceed the grid"):
            build_cdr_chain(
                grid,
                eye_opening_noise(0.05, n_atoms=5),
                DiscreteDistribution.delta(0.4),  # ~2 steps + g=3 > 4
                counter_length=1,
                phase_step_units=3,
            )


class TestLayout:
    def test_index_roundtrip(self):
        model = small_model()
        for d in range(model.n_data_states):
            for cv in (-2, 0, 2):
                for m in (0, 13, 31):
                    i = model.state_index(d, cv, m)
                    assert model.state_of_index(i) == (d, cv, m)

    def test_index_bounds(self):
        model = small_model()
        with pytest.raises(ValueError):
            model.state_index(99, 0, 0)
        with pytest.raises(ValueError):
            model.state_of_index(model.n_states)

    def test_marginals_sum_to_one(self):
        model = small_model()
        eta = solve_direct(model.chain.P).distribution
        for marg in (
            model.phase_marginal(eta),
            model.counter_marginal(eta),
            model.data_marginal(eta),
        ):
            assert marg.sum() == pytest.approx(1.0, abs=1e-9)
            assert marg.min() >= -1e-12

    def test_phase_marginal_size_check(self):
        model = small_model()
        with pytest.raises(ValueError):
            model.phase_marginal(np.ones(3))

    def test_phase_values_per_state(self):
        model = small_model()
        vals = model.phase_values_per_state()
        assert vals.shape == (model.n_states,)
        i = model.state_index(1, 0, 5)
        assert vals[i] == pytest.approx(model.grid.value_of(5))


class TestSignMasses:
    def test_masses_sum_to_one_per_phase(self):
        model = small_model()
        total = sum(model.sign_masses[o] for o in (-1, 0, 1))
        np.testing.assert_allclose(total, 1.0, atol=1e-12)

    def test_positive_phase_mostly_lag(self):
        model = small_model()
        m_hi = model.n_phase_points - 1  # phi ~ +0.48, far beyond nw
        assert model.sign_masses[1][m_hi] == pytest.approx(1.0)
        assert model.sign_masses[-1][0] == pytest.approx(1.0)


class TestDynamics:
    def test_loop_centers_phase(self):
        """With symmetric noise the stationary phase error concentrates
        around zero: the loop locks."""
        model = small_model(
            nr=DiscreteDistribution([-0.03125, 0.0, 0.03125], [0.2, 0.6, 0.2])
        )
        eta = solve_direct(model.chain.P).distribution
        pdf = model.phase_marginal(eta)
        phi = model.grid.values
        center_mass = pdf[np.abs(phi) < 0.25].sum()
        assert center_mass > 0.99
        assert abs(model.mean_phase(eta)) < 0.02

    def test_symmetric_spec_gives_symmetric_pdf(self):
        model = small_model(
            nr=DiscreteDistribution([-0.03125, 0.0, 0.03125], [0.2, 0.6, 0.2])
        )
        eta = solve_direct(model.chain.P).distribution
        pdf = model.phase_marginal(eta)
        np.testing.assert_allclose(pdf, pdf[::-1], atol=1e-9)

    def test_drift_shifts_mean_phase(self):
        """Positive-mean n_r pushes the stationary phase error positive
        (the loop lags the frequency offset)."""
        base = small_model(
            nr=DiscreteDistribution([-0.03125, 0.0, 0.03125], [0.2, 0.6, 0.2])
        )
        drift = small_model(
            nr=DiscreteDistribution([0.0, 0.03125], [0.5, 0.5])
        )
        eta0 = solve_direct(base.chain.P).distribution
        eta1 = solve_direct(drift.chain.P).distribution
        assert drift.mean_phase(eta1) > base.mean_phase(eta0) + 0.001

    def test_more_noise_wider_pdf(self):
        quiet = small_model(nw=eye_opening_noise(0.02, n_atoms=7))
        loud = small_model(nw=eye_opening_noise(0.10, n_atoms=7))
        eta_q = solve_direct(quiet.chain.P).distribution
        eta_l = solve_direct(loud.chain.P).distribution

        def std(model, eta):
            pdf = model.phase_marginal(eta)
            mu = np.dot(model.grid.values, pdf)
            return np.sqrt(np.dot((model.grid.values - mu) ** 2, pdf))

        assert std(loud, eta_l) > std(quiet, eta_q)


class TestSlipMatrix:
    def test_dominated_by_tpm(self):
        model = small_model()
        diff = (model.chain.P - model.slip_matrix).toarray()
        assert diff.min() >= -1e-12

    def test_slips_only_near_boundary(self):
        model = small_model()
        E = model.slip_matrix.tocoo()
        M = model.n_phase_points
        max_move = model.phase_step_units + int(
            np.max(np.abs(model.nr_steps.values))
        )
        for r in np.unique(E.row):
            m = r % M
            assert m < max_move or m >= M - max_move

    def test_no_drift_no_step_no_slips(self):
        # With n_r == 0 every move is a multiple of the step G=2, so the
        # builder correctly warns about the decoupled phase lattice.
        with pytest.warns(RuntimeWarning, match="residue classes"):
            model = small_model(
                nw=DiscreteDistribution.delta(0.0),
                nr=DiscreteDistribution.delta(0.0),
            )
        assert model.slip_matrix.nnz == 0

    def test_decoupled_lattice_warns(self):
        with pytest.warns(RuntimeWarning, match="non-communicating"):
            small_model(nr=DiscreteDistribution.delta(2 * PhaseGrid(32).step))

    def test_slip_rate_positive_with_drift(self):
        model = small_model()
        eta = solve_direct(model.chain.P).distribution
        from repro.markov import stationary_event_rate

        assert stationary_event_rate(eta, model.slip_matrix) > 0.0


class TestStationaryFluxBalance:
    def test_phase_index_is_stationary(self):
        """Exact invariant: in stationarity the expected change of the
        phase *index* (a bounded state function) is zero each symbol.
        Computed transition-by-transition from P and eta."""
        model = small_model()
        eta = solve_direct(model.chain.P).distribution
        coo = model.chain.P.tocoo()
        M = model.n_phase_points
        dm_true = (coo.col % M).astype(np.int64) - (coo.row % M)
        mean_change = float(np.sum(eta[coo.row] * coo.data * dm_true))
        assert mean_change == pytest.approx(0.0, abs=1e-10)

    def test_drift_budget_equals_wrap_flux(self):
        """Exact budget: mean physical phase move per symbol (loop
        correction + drift, in grid steps) equals M times the signed wrap
        flux -- every net step of drift the loop cannot absorb must exit
        through the boundary as cycle slips."""
        model = small_model()
        eta = solve_direct(model.chain.P).distribution
        coo = model.chain.P.tocoo()
        M = model.n_phase_points
        dm_true = (coo.col % M).astype(np.int64) - (coo.row % M)
        # physical shift: wrap-aware signed distance (|shift| < M/2 here)
        shift = (dm_true + M // 2) % M - M // 2
        wraps = (shift - dm_true) // M  # +1 for upward wrap, -1 downward
        mean_shift = float(np.sum(eta[coo.row] * coo.data * shift))
        wrap_flux = float(np.sum(eta[coo.row] * coo.data * wraps))
        assert mean_shift == pytest.approx(M * wrap_flux, abs=1e-10)
        # and the unsigned wrap flux is exactly the slip rate
        from repro.markov import stationary_event_rate

        unsigned = float(np.sum(eta[coo.row] * coo.data * np.abs(wraps)))
        assert unsigned == pytest.approx(
            stationary_event_rate(eta, model.slip_matrix), rel=1e-9, abs=1e-15
        )


class TestMultigridIntegration:
    def test_partitions_halve_phase_axis(self):
        model = small_model()  # M=32
        parts = model.phase_pairing_partitions(coarsest_phase_points=4)
        assert len(parts) == 3  # 32 -> 16 -> 8 -> 4
        assert parts[0].n_states == model.n_states
        assert parts[0].n_blocks == model.n_states // 2

    def test_partitions_validation(self):
        with pytest.raises(ValueError):
            small_model().phase_pairing_partitions(coarsest_phase_points=1)

    def test_multigrid_matches_direct(self):
        model = small_model()
        ref = solve_direct(model.chain.P).distribution
        res = solve_multigrid(
            model.chain,
            strategy=model.multigrid_strategy(coarsest_phase_points=4),
            tol=1e-11,
            coarsest_size=1024,
        )
        assert res.converged
        assert np.abs(res.distribution - ref).sum() < 1e-8


class TestStructureReport:
    def test_fields(self):
        model = small_model()
        rep = model.structure_report()
        assert rep["n_states"] == model.n_states
        assert rep["nnz"] == model.chain.nnz
        assert 0.0 < rep["density"] < 1.0
        assert rep["nnz_per_row"] > 1.0
        assert 0.0 <= rep["fraction_counter_preserving"] <= 1.0
        assert rep["form_time_s"] > 0.0

    def test_phase_moves_banded(self):
        model = small_model()
        rep = model.structure_report()
        max_expected = model.phase_step_units + int(
            np.abs(model.nr_steps.values).max()
        )
        assert 0 < rep["max_phase_move_steps"] <= max_expected


class TestAlternativeSources:
    def test_bernoulli_source(self):
        grid = PhaseGrid(32)
        model = build_cdr_chain(
            grid,
            eye_opening_noise(0.05, n_atoms=5),
            sonet_drift_noise(max_ui=grid.step, mean_ui=0.0, grid_step=grid.step),
            counter_length=2,
            phase_step_units=2,
            data_source=bernoulli_transition_source("data", 0.5),
        )
        assert model.n_data_states == 2
        np.testing.assert_allclose(model.chain.row_sums(), 1.0, atol=1e-9)

    def test_run_length_params_passthrough(self):
        grid = PhaseGrid(16)
        model = build_cdr_chain(
            grid,
            eye_opening_noise(0.05, n_atoms=5),
            DiscreteDistribution.delta(0.0),
            counter_length=2,
            phase_step_units=1,
            transition_density=0.7,
            max_run_length=5,
        )
        assert model.n_data_states == 5
