"""Campaign-scoped solve contexts in sweeps and Monte-Carlo campaigns.

Acceptance for the solve-context layer: adjacent sweep points share one
coarsening hierarchy (hits, not rebuilds) and warm-start from the nearest
solved neighbor, converging in strictly fewer multigrid iterations than
the cold baseline -- while the physics (phase RMS) stays put.
"""

import numpy as np
import pytest

from repro import CDRSpec, sweep_parameter
from repro.cdr.montecarlo import simulate_cdr_campaign
from repro.markov import SolveContext

VALUES = [0.03, 0.032, 0.034]


def sweep_spec():
    return CDRSpec(n_phase_points=128, counter_length=4, nw_std=0.03)


@pytest.fixture(scope="module")
def cold_and_warm():
    spec = sweep_spec()
    cold = sweep_parameter(spec, "nw_std", VALUES, solver="multigrid", tol=1e-10)
    ctx = SolveContext()
    warm = sweep_parameter(
        spec, "nw_std", VALUES, solver="multigrid", tol=1e-10,
        solve_context=ctx,
    )
    return cold, warm, ctx


class TestWarmStartedSweep:
    def test_cold_records_have_no_warm_flag(self, cold_and_warm):
        cold, _, _ = cold_and_warm
        assert all("warm_started" not in r for r in cold)
        assert cold.context_stats is None

    def test_first_point_cold_rest_warm(self, cold_and_warm):
        _, warm, _ = cold_and_warm
        flags = [r["warm_started"] for r in warm]
        assert flags == [False, True, True]

    def test_warm_points_need_strictly_fewer_iterations(self, cold_and_warm):
        cold, warm, _ = cold_and_warm
        # Excluding the (cold) first point, every warm-started point must
        # beat its cold twin outright -- the acceptance criterion.
        for c, w in zip(cold[1:], warm[1:]):
            assert w["iterations"] < c["iterations"], (
                f"nw_std={w['nw_std']}: warm {w['iterations']} !< "
                f"cold {c['iterations']}"
            )

    def test_hierarchy_built_once_then_hit(self, cold_and_warm):
        _, warm, ctx = cold_and_warm
        stats = ctx.stats()
        assert stats["hierarchy_misses"] == 1
        assert stats["hierarchy_hits"] == len(VALUES) - 1
        assert stats["warm_starts"] == len(VALUES) - 1
        assert warm.context_stats == stats

    def test_measures_agree_with_cold_baseline(self, cold_and_warm):
        cold, warm, _ = cold_and_warm
        for c, w in zip(cold, warm):
            np.testing.assert_allclose(
                w["phase_rms"], c["phase_rms"], rtol=0.0, atol=1e-8
            )

    def test_summary_reports_cache_counters(self, cold_and_warm):
        _, warm, _ = cold_and_warm
        text = warm.summary()
        assert "hierarchy cache" in text
        assert "warm starts" in text


class TestWarmStartFlag:
    def test_warm_start_flag_creates_a_context(self):
        spec = sweep_spec()
        result = sweep_parameter(
            spec, "nw_std", VALUES[:2], solver="multigrid", tol=1e-10,
            warm_start=True,
        )
        assert result.context_stats is not None
        assert result.context_stats["warm_starts"] == 1
        assert [r["warm_started"] for r in result] == [False, True]

    def test_context_without_warm_start_still_shares_hierarchies(self):
        spec = sweep_spec()
        ctx = SolveContext()
        result = sweep_parameter(
            spec, "nw_std", VALUES[:2], solver="multigrid", tol=1e-10,
            solve_context=ctx, warm_start=False,
        )
        stats = result.context_stats
        assert stats["hierarchy_hits"] == 1
        assert stats["warm_starts"] == 0
        assert [r["warm_started"] for r in result] == [False, False]
        # The context's own warm-start setting is restored afterwards.
        assert ctx.warm_start


class TestCampaignReference:
    def test_campaign_solves_reference_through_shared_context(self):
        from repro import analyze_cdr
        from repro.cdr import (
            PhaseGrid,
            transition_run_length_source,
        )
        from repro.noise import eye_opening_noise, sonet_drift_noise

        spec = CDRSpec(n_phase_points=64, counter_length=3, nw_std=0.05)
        ctx = SolveContext()
        # Prime the context so the reference solve warm-starts.
        analyze_cdr(spec, solver="multigrid", tol=1e-10, solve_context=ctx)
        grid = PhaseGrid(64)
        campaign = simulate_cdr_campaign(
            grid,
            eye_opening_noise(0.05, n_atoms=9),
            sonet_drift_noise(
                max_ui=grid.step, mean_ui=0.3 * grid.step, grid_step=grid.step
            ),
            3,
            1,
            transition_run_length_source("data", 0.5, 3),
            n_symbols=200,
            seeds=[1, 2],
            reference_spec=spec, solve_context=ctx,
        )
        assert campaign.reference is not None
        assert campaign.reference["warm_started"]
        assert campaign.reference["ber"] >= 0.0
        assert campaign.context_stats["warm_starts"] >= 1
        assert "chain predicts" in campaign.summary()
