"""Tests for the Monte-Carlo baseline (S19) and its agreement with the
Markov-chain analysis at simulation-accessible error rates."""

import numpy as np
import pytest

from repro.cdr import (
    PhaseGrid,
    build_cdr_chain,
    required_symbols_for_ber,
    simulate_cdr,
    transition_run_length_source,
)
from repro.core.measures import bit_error_rate_discrete, cycle_slip_rate
from repro.markov import solve_direct
from repro.noise import DiscreteDistribution, eye_opening_noise, sonet_drift_noise


def noisy_params():
    """A deliberately noisy design point: BER around 1e-2 so Monte Carlo
    converges quickly."""
    grid = PhaseGrid(32)
    return dict(
        grid=grid,
        nw=eye_opening_noise(0.18, n_atoms=9),
        nr=sonet_drift_noise(
            max_ui=grid.step, mean_ui=0.3 * grid.step, grid_step=grid.step
        ),
        counter_length=2,
        phase_step_units=1,
    )


class TestRequiredSymbols:
    def test_scales_inversely_with_ber(self):
        assert required_symbols_for_ber(1e-6) == pytest.approx(
            10.0 * required_symbols_for_ber(1e-5), rel=0.01
        )

    def test_sonet_regime_is_infeasible(self):
        # The paper's motivating point: 1e-10 BER needs > 1e12 symbols.
        assert required_symbols_for_ber(1e-10) > 1e12

    def test_validation(self):
        with pytest.raises(ValueError):
            required_symbols_for_ber(0.0)
        with pytest.raises(ValueError):
            required_symbols_for_ber(1e-3, relative_ci_halfwidth=0.0)


class TestSimulator:
    def test_basic_run(self):
        rng = np.random.default_rng(0)
        params = noisy_params()
        source = transition_run_length_source("data", 0.5, 3)
        res = simulate_cdr(
            data_source=source, n_symbols=2000, rng=rng, **params
        )
        assert res.n_symbols == 2000
        assert 0 <= res.n_errors <= 2000
        assert res.mode == "discretized"
        assert res.sim_time > 0.0
        assert -0.5 <= res.phase_mean <= 0.5
        assert "MC[discretized]" in res.summary()

    def test_validation(self):
        rng = np.random.default_rng(0)
        params = noisy_params()
        source = transition_run_length_source("data", 0.5, 3)
        with pytest.raises(ValueError, match="mode"):
            simulate_cdr(data_source=source, n_symbols=10, rng=rng,
                         mode="quantum", **params)
        with pytest.raises(ValueError, match="n_symbols"):
            simulate_cdr(data_source=source, n_symbols=0, rng=rng, **params)

    def test_confidence_interval_contains_estimate(self):
        rng = np.random.default_rng(1)
        params = noisy_params()
        source = transition_run_length_source("data", 0.5, 3)
        res = simulate_cdr(data_source=source, n_symbols=5000, rng=rng, **params)
        lo, hi = res.ber_confidence_interval()
        assert lo <= res.ber <= hi

    def test_continuous_mode_runs(self):
        rng = np.random.default_rng(2)
        params = noisy_params()
        source = transition_run_length_source("data", 0.5, 3)
        res = simulate_cdr(
            data_source=source, n_symbols=2000, rng=rng, mode="continuous",
            **params,
        )
        assert res.mode == "continuous"
        assert 0.0 <= res.ber <= 1.0


class TestAgreementWithAnalysis:
    """The paper's validation logic inverted: at high BER, brute-force
    simulation must agree with the Markov-chain analysis."""

    @pytest.fixture(scope="class")
    def analysis(self):
        params = noisy_params()
        model = build_cdr_chain(**params)
        eta = solve_direct(model.chain.P).distribution
        return params, model, eta

    def test_ber_agreement_discretized(self, analysis):
        params, model, eta = analysis
        ber_chain = bit_error_rate_discrete(model, eta)
        assert ber_chain > 1e-3  # the point of the noisy design
        rng = np.random.default_rng(42)
        res = simulate_cdr(
            data_source=transition_run_length_source("data", 0.5, 3),
            n_symbols=150_000,
            rng=rng,
            warmup_symbols=2_000,
            **params,
        )
        lo, hi = res.ber_confidence_interval(z=3.5)
        assert lo <= ber_chain <= hi

    def test_slip_rate_agreement(self, analysis):
        params, model, eta = analysis
        rate_chain = cycle_slip_rate(model, eta)
        assert rate_chain > 1e-4
        rng = np.random.default_rng(43)
        res = simulate_cdr(
            data_source=transition_run_length_source("data", 0.5, 3),
            n_symbols=150_000,
            rng=rng,
            warmup_symbols=2_000,
            **params,
        )
        assert res.slip_rate == pytest.approx(rate_chain, rel=0.3)

    def test_phase_mean_agreement(self, analysis):
        params, model, eta = analysis
        mean_chain = model.mean_phase(eta)
        rng = np.random.default_rng(44)
        res = simulate_cdr(
            data_source=transition_run_length_source("data", 0.5, 3),
            n_symbols=100_000,
            rng=rng,
            warmup_symbols=2_000,
            **params,
        )
        assert res.phase_mean == pytest.approx(mean_chain, abs=0.02)

    def test_continuous_close_to_discretized(self, analysis):
        """Discretization error should be modest at this grid resolution."""
        params, model, eta = analysis
        ber_chain = bit_error_rate_discrete(model, eta)
        rng = np.random.default_rng(45)
        res = simulate_cdr(
            data_source=transition_run_length_source("data", 0.5, 3),
            n_symbols=150_000,
            rng=rng,
            warmup_symbols=2_000,
            mode="continuous",
            **params,
        )
        assert res.ber == pytest.approx(ber_chain, rel=0.5)
