"""Tests for the Markov-modulated drift builder (correlated / sinusoidal
jitter -- the paper's "correlated or cumulative jitter may also be
specified" and sinusoidal-jitter remarks, implemented with hidden states)."""

import numpy as np
import pytest

from repro.cdr import (
    PhaseGrid,
    build_cdr_chain,
    build_modulated_cdr_chain,
    bursty_drift_source,
    sinusoidal_drift_source,
)
from repro.core.measures import bit_error_rate, cycle_slip_rate
from repro.fsm import MarkovSource
from repro.markov import MarkovChain, solve_direct
from repro.noise import DiscreteDistribution, eye_opening_noise


@pytest.fixture()
def grid():
    return PhaseGrid(32)


@pytest.fixture()
def nw():
    return eye_opening_noise(0.06, n_atoms=7)


@pytest.fixture()
def nr(grid):
    return DiscreteDistribution(
        [-grid.step, 0.0, grid.step], [0.25, 0.5, 0.25]
    )


def trivial_drift():
    return MarkovSource("drift", MarkovChain(np.array([[1.0]])), emit=[0.0])


class TestSinusoidalDriftSource:
    def test_emissions_sum_to_zero_over_period(self):
        src = sinusoidal_drift_source("sj", 0.1, 16, dwell_jitter=0.0)
        assert sum(src.symbols) == pytest.approx(0.0, abs=1e-12)

    def test_accumulated_emissions_trace_sinusoid(self):
        T, A = 32, 0.2
        src = sinusoidal_drift_source("sj", A, T, dwell_jitter=0.0)
        acc = np.cumsum(src.symbols)
        assert acc.max() == pytest.approx(A, rel=1e-6)
        assert acc.min() == pytest.approx(-A, rel=0.1)

    def test_ring_rotates(self):
        src = sinusoidal_drift_source("sj", 0.1, 8, dwell_jitter=0.1)
        branches = dict(src.branches(3))
        assert branches[4] == pytest.approx(0.9)
        assert branches[3] == pytest.approx(0.1)

    def test_stationary_uniform_over_ring(self):
        src = sinusoidal_drift_source("sj", 0.1, 8, dwell_jitter=0.05)
        eta = solve_direct(src.chain.P).distribution
        np.testing.assert_allclose(eta, 1.0 / 8, atol=1e-10)

    def test_validation(self):
        with pytest.raises(ValueError):
            sinusoidal_drift_source("sj", -0.1, 8)
        with pytest.raises(ValueError):
            sinusoidal_drift_source("sj", 0.1, 1)
        with pytest.raises(ValueError):
            sinusoidal_drift_source("sj", 0.1, 8, dwell_jitter=1.0)


class TestBurstyDriftSource:
    def test_emissions(self):
        src = bursty_drift_source("b", 0.0, 0.02, 0.01, 0.2)
        assert src.symbols == [0.0, 0.02]

    def test_burst_occupancy(self):
        src = bursty_drift_source("b", 0.0, 0.02, 0.01, 0.2)
        eta = solve_direct(src.chain.P).distribution
        assert eta[1] == pytest.approx(0.01 / 0.21, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            bursty_drift_source("b", 0.0, 0.02, 0.0, 0.2)


class TestBuilderEquivalence:
    def test_trivial_modulation_equals_base_model(self, grid, nw, nr):
        base = build_cdr_chain(
            grid=grid, nw=nw, nr=nr, counter_length=2, phase_step_units=2,
            max_run_length=2,
        )
        mod = build_modulated_cdr_chain(
            grid=grid, nw=nw, drift_source=trivial_drift(), nr=nr,
            counter_length=2, phase_step_units=2, max_run_length=2,
        )
        assert mod.n_states == base.n_states
        diff = (base.chain.P - mod.chain.P)
        assert abs(diff).max() < 1e-14
        sdiff = (base.slip_matrix - mod.slip_matrix)
        assert sdiff.nnz == 0 or abs(sdiff).max() < 1e-14


class TestModulatedModel:
    @pytest.fixture()
    def model(self, grid, nw, nr):
        sj = sinusoidal_drift_source("sj", 0.1, 8)
        return build_modulated_cdr_chain(
            grid=grid, nw=nw, drift_source=sj, nr=nr,
            counter_length=2, phase_step_units=2, max_run_length=2,
        )

    def test_is_stochastic(self, model):
        np.testing.assert_allclose(model.chain.row_sums(), 1.0, atol=1e-9)

    def test_state_count(self, model):
        assert model.n_states == 2 * 8 * 3 * 32
        assert model.n_drift_states == 8

    def test_state_index_layout(self, model):
        i = model.state_index(1, 3, 0, 5)
        assert i == ((1 * 8 + 3) * 3 + 1) * 32 + 5

    def test_index_validation(self, model):
        with pytest.raises(ValueError):
            model.state_index(0, 99, 0, 0)

    def test_marginals(self, model):
        eta = solve_direct(model.chain.P).distribution
        pm = model.phase_marginal(eta)
        dm = model.drift_marginal(eta)
        assert pm.sum() == pytest.approx(1.0, abs=1e-9)
        assert dm.sum() == pytest.approx(1.0, abs=1e-9)
        np.testing.assert_allclose(dm, 1.0 / 8, atol=1e-6)

    def test_measures_work_via_duck_typing(self, model):
        eta = solve_direct(model.chain.P).distribution
        assert 0.0 <= bit_error_rate(model, eta) <= 1.0
        assert cycle_slip_rate(model, eta) >= 0.0

    def test_multigrid_partitions(self, model):
        parts = model.phase_pairing_partitions(coarsest_phase_points=8)
        assert parts[0].n_states == model.n_states
        assert parts[0].n_blocks == model.n_states // 2

    def test_multigrid_matches_direct(self, model):
        from repro.markov import solve_multigrid

        ref = solve_direct(model.chain.P).distribution
        res = solve_multigrid(
            model.chain.P, strategy=model.multigrid_strategy(),
            tol=1e-10, nu_pre=4, nu_post=4, coarsest_size=1024,
        )
        assert res.converged
        assert np.abs(res.distribution - ref).sum() < 1e-7

    def test_validation(self, grid, nw, nr):
        with pytest.raises(ValueError, match="counter_length"):
            build_modulated_cdr_chain(
                grid=grid, nw=nw, drift_source=trivial_drift(),
                counter_length=0, phase_step_units=1,
            )
        with pytest.raises(ValueError, match="exceed the grid"):
            build_modulated_cdr_chain(
                grid=PhaseGrid(4), nw=nw,
                drift_source=sinusoidal_drift_source("sj", 0.9, 4),
                counter_length=1, phase_step_units=3,
            )


class TestJitterTrackingPhysics:
    """The reason hidden-state modulation matters: the loop tracks slow
    jitter but not fast jitter."""

    def run(self, grid, nw, nr, period):
        sj = sinusoidal_drift_source("sj", 0.12, period)
        model = build_modulated_cdr_chain(
            grid=grid, nw=nw, drift_source=sj, nr=nr,
            counter_length=2, phase_step_units=2, max_run_length=2,
        )
        eta = solve_direct(model.chain.P).distribution
        return bit_error_rate(model, eta)

    def test_slow_jitter_tracked_fast_jitter_not(self, grid, nw, nr):
        # max trackable slope here is ~ G * overflow-rate ~ 0.016 UI/symbol;
        # period 64 stays below it (slope 2*pi*A/T ~ 0.012), period 4 is
        # far above (~0.19).
        slow = self.run(grid, nw, nr, period=64)
        fast = self.run(grid, nw, nr, period=4)
        assert fast > 10.0 * slow

    def test_amplitude_monotonicity(self, grid, nw, nr):
        def ber_at(amp):
            sj = sinusoidal_drift_source("sj", amp, 8)
            model = build_modulated_cdr_chain(
                grid=grid, nw=nw, drift_source=sj, nr=nr,
                counter_length=2, phase_step_units=2, max_run_length=2,
            )
            eta = solve_direct(model.chain.P).distribution
            return bit_error_rate(model, eta)

        assert ber_at(0.2) > ber_at(0.05)
