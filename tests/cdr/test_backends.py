"""Backend-equivalence suite: assembled / matrix-free / kronecker.

All three registered TPM backends must realize the *same* matrix: matvec
and rmatvec agree on random vectors to near machine precision, structural
queries (diagonal, row sums, slip flux, Galerkin restriction) match the
assembled reference, and the stationary distribution -- and therefore BER
and slip MTBF -- agree through the registry for every solver the backend
supports.
"""

import numpy as np
import pytest

import repro.cdr.backends  # noqa: F401  (registers the built-in backends)
from repro.cdr.backends import KroneckerCDROperator, OperatorCDRModel
from repro.cdr.operator import CDRTransitionOperator
from repro.core.analyzer import analyze_cdr
from repro.core.spec import CDRSpec
from repro.markov import as_operator, backend_names, get_backend, solver_table
from repro.markov.lumping import Partition, lumped_tpm

pytestmark = pytest.mark.operator


def small_spec(**overrides) -> CDRSpec:
    base = dict(
        n_phase_points=32,
        n_clock_phases=16,
        counter_length=2,
        max_run_length=2,
        nw_std=0.08,
        nw_atoms=7,
    )
    base.update(overrides)
    return CDRSpec(**base)


@pytest.fixture(scope="module")
def triplet():
    """The same small spec realized by all three backends."""
    spec = small_spec()
    assembled = get_backend("assembled").build(spec)
    mf = get_backend("matrix-free").build(spec)
    kron = get_backend("kronecker").build(spec)
    return spec, assembled, mf, kron


class TestRegisteredBackends:
    def test_names(self):
        assert set(backend_names()) >= {"assembled", "kronecker", "matrix-free"}

    def test_unknown_backend_error(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("bogus")

    def test_spec_validates_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            small_spec(backend="bogus")

    def test_facade_types(self, triplet):
        _, assembled, mf, kron = triplet
        assert isinstance(mf, OperatorCDRModel)
        assert isinstance(mf.chain, CDRTransitionOperator)
        assert isinstance(kron.chain, KroneckerCDROperator)
        assert mf.slip_matrix is None
        assert assembled.slip_matrix is not None


class TestMatvecAgreement:
    """matvec/rmatvec across the three adapters, rtol 1e-12."""

    def test_random_vectors(self, triplet):
        _, assembled, mf, kron = triplet
        P = assembled.chain.P
        ops = {
            "assembled": as_operator(assembled.chain),
            "matrix-free": mf.chain,
            "kronecker": kron.chain,
        }
        rng = np.random.default_rng(42)
        for _ in range(5):
            v = rng.random(assembled.n_states)
            ref_mv = P.dot(v)
            ref_rmv = P.T.dot(v)
            for name, op in ops.items():
                np.testing.assert_allclose(
                    op.matvec(v), ref_mv, rtol=1e-12, atol=1e-14, err_msg=name
                )
                np.testing.assert_allclose(
                    op.rmatvec(v), ref_rmv, rtol=1e-12, atol=1e-14, err_msg=name
                )

    def test_diagonal_and_row_sums(self, triplet):
        _, assembled, mf, kron = triplet
        P = assembled.chain.P
        for name, op in (("matrix-free", mf.chain), ("kronecker", kron.chain)):
            np.testing.assert_allclose(
                op.diagonal(), P.diagonal(), atol=1e-14, err_msg=name
            )
            np.testing.assert_allclose(
                op.row_sums(), 1.0, atol=1e-12, err_msg=name
            )

    def test_to_csr_reproduces_assembled(self, triplet):
        _, assembled, mf, kron = triplet
        P = assembled.chain.P
        for name, op in (("matrix-free", mf.chain), ("kronecker", kron.chain)):
            diff = abs(op.to_csr() - P)
            assert diff.max() < 1e-14, name

    def test_slip_row_sums_match_slip_matrix(self, triplet):
        _, assembled, mf, kron = triplet
        ref = np.asarray(assembled.slip_matrix.sum(axis=1)).ravel()
        for name, model in (("matrix-free", mf), ("kronecker", kron)):
            np.testing.assert_allclose(
                model.slip_row_sums(), ref, atol=1e-14, err_msg=name
            )

    def test_restrict_matches_lumped_tpm(self, triplet):
        _, assembled, mf, kron = triplet
        part = mf.phase_pairing_partitions()[0]
        w = np.random.default_rng(7).random(assembled.n_states)
        ref = lumped_tpm(assembled.chain.P, part, weights=w)
        for name, op in (("matrix-free", mf.chain), ("kronecker", kron.chain)):
            C = op.restrict(part, w)
            np.testing.assert_allclose(
                C.toarray(), ref.toarray(), atol=1e-12, err_msg=name
            )


class TestStationaryAgreement:
    """Every backend x iterative-solver pair through the registry."""

    def test_all_pairs(self, triplet):
        from repro.markov import stationary_distribution

        spec, assembled, mf, kron = triplet
        ref = stationary_distribution(assembled.chain, method="direct").distribution
        models = {"assembled": assembled, "matrix-free": mf, "kronecker": kron}
        for entry in solver_table():
            for backend, model in models.items():
                if not entry.matrix_free and backend == "assembled":
                    continue  # covered by the reference + solver suites
                res = stationary_distribution(
                    model.chain, method=entry.name, tol=1e-11
                )
                assert res.converged, (backend, entry.name)
                assert np.abs(res.distribution - ref).sum() < 1e-7, (
                    backend, entry.name,
                )


class TestAnalyzerAgreement:
    def test_ber_and_slips_agree(self):
        # nw_std chosen so BER and the slip rate are well above the solver
        # tolerance; deeper tails are unresolved noise at tol=1e-12 and
        # cannot be expected to agree between exact and iterative solves.
        spec = small_spec(nw_std=0.25)
        ref = analyze_cdr(spec)
        for backend in ("matrix-free", "kronecker"):
            res = analyze_cdr(spec, backend=backend, solver="multigrid", tol=1e-12)
            assert res.backend == backend
            assert res.solver_entry == "multigrid"
            assert abs(res.ber - ref.ber) <= 1e-8 * ref.ber, backend
            if np.isfinite(ref.mean_symbols_between_slips):
                assert np.isclose(
                    res.mean_symbols_between_slips,
                    ref.mean_symbols_between_slips,
                    rtol=1e-6,
                ), backend

    def test_auto_solver_policy_matrix_free(self):
        res = analyze_cdr(small_spec(), backend="matrix-free")
        # Small model + no assembled matrix -> power, not direct.
        assert res.solver_entry == "power"
        assert res.solver_result.converged

    def test_backend_recorded_in_manifest(self):
        from repro.obs import Tracer, build_run_manifest, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            analysis = analyze_cdr(small_spec(), backend="matrix-free")
            manifest = build_run_manifest(
                kind="analysis", spec=analysis.spec, analysis=analysis,
                tracer=tracer,
            )
        assert manifest["results"]["backend"] == "matrix-free"
        assert manifest["results"]["solver_entry"] == analysis.solver_entry
        assert manifest["spec"]["backend"] == "assembled"

    def test_spec_backend_round_trips(self):
        from repro.core.serialize import spec_from_dict, spec_to_dict

        spec = small_spec(backend="kronecker")
        assert spec_from_dict(spec_to_dict(spec)) == spec


class TestNeverMaterializes:
    def test_matrix_free_multigrid_never_calls_to_csr(self, monkeypatch):
        def boom(self):  # pragma: no cover - failure path
            raise AssertionError("matrix-free path materialized the TPM")

        monkeypatch.setattr(CDRTransitionOperator, "to_csr", boom)
        spec = small_spec(n_phase_points=64)
        res = analyze_cdr(spec, backend="matrix-free", solver="multigrid")
        assert res.solver_result.converged
        assert res.ber > 0

    def test_direct_raises_capability_error_matrix_free(self, monkeypatch):
        from repro.markov import OperatorCapabilityError

        def boom(self):
            raise OperatorCapabilityError("no materialization in this test")

        monkeypatch.setattr(CDRTransitionOperator, "to_csr", boom)
        with pytest.raises(OperatorCapabilityError):
            analyze_cdr(small_spec(), backend="matrix-free", solver="direct")


@pytest.mark.slow
class TestAcceptanceScale:
    def test_1e5_states_end_to_end_matrix_free(self, monkeypatch):
        """>=1e5-state spec: BER + slip MTBF via matrix-free multigrid,
        never materializing, matching assembled to rtol 1e-8."""

        def boom(self):  # pragma: no cover - failure path
            raise AssertionError("matrix-free path materialized the TPM")

        spec = CDRSpec(n_phase_points=2048, counter_length=12, nw_std=0.15)
        assert spec.expected_state_count() >= 100_000

        monkeypatch.setattr(CDRTransitionOperator, "to_csr", boom)
        mf = analyze_cdr(spec, backend="matrix-free", solver="multigrid", tol=1e-12)
        monkeypatch.undo()
        ref = analyze_cdr(spec, solver="multigrid", tol=1e-12)

        assert mf.solver_result.converged
        assert abs(mf.ber - ref.ber) <= 1e-8 * ref.ber
        assert np.isfinite(mf.mean_symbols_between_slips)
        assert np.isclose(
            mf.mean_symbols_between_slips,
            ref.mean_symbols_between_slips,
            rtol=1e-6,
        )
