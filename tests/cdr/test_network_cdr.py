"""Cross-validation: the literal Figure-2 FSM network (S12+S14-S17) must
agree exactly with the vectorized builder (S18)."""

import numpy as np
import pytest

from repro.cdr import PhaseGrid, build_cdr_chain, build_cdr_network, compile_cdr_network
from repro.markov import (
    solve_direct,
    stationary_event_rate,
)
from repro.noise import DiscreteDistribution


def tiny_params():
    grid = PhaseGrid(16)
    return dict(
        grid=grid,
        nw=DiscreteDistribution([-0.1, 0.0, 0.1], [0.25, 0.5, 0.25]),
        nr=DiscreteDistribution(
            [-grid.step, 0.0, grid.step], [0.2, 0.55, 0.25]
        ),
        counter_length=2,
        phase_step_units=3,
        transition_density=0.5,
        max_run_length=2,
    )


@pytest.fixture(scope="module")
def pair():
    params = tiny_params()
    model = build_cdr_chain(**params)
    nc = compile_cdr_network(**params)
    return params, model, nc


def network_phase_marginal(nc, grid):
    """Phase marginal of the network chain from its state labels.

    Label layout: (data_h, nw_h, nr_h, pd_state, counter_state, phase_idx).
    """
    eta = solve_direct(nc.chain.P).distribution
    marg = np.zeros(grid.n_points)
    for i, lab in enumerate(nc.chain.state_labels):
        marg[lab[-1]] += eta[i]
    return marg


class TestAgreement:
    def test_phase_marginals_identical(self, pair):
        params, model, nc = pair
        eta_model = solve_direct(model.chain.P).distribution
        pdf_model = model.phase_marginal(eta_model)
        pdf_net = network_phase_marginal(nc, params["grid"])
        np.testing.assert_allclose(pdf_net, pdf_model, atol=1e-9)

    def test_slip_rates_identical(self, pair):
        params, model, nc = pair
        eta_model = solve_direct(model.chain.P).distribution
        rate_model = stationary_event_rate(eta_model, model.slip_matrix)
        eta_net = solve_direct(nc.chain.P).distribution
        rate_net = stationary_event_rate(eta_net, nc.event_matrices["slip"])
        assert rate_net == pytest.approx(rate_model, rel=1e-8, abs=1e-12)

    def test_decision_error_rate_matches_discrete_ber(self, pair):
        from repro.core.measures import bit_error_rate_discrete

        params, model, nc = pair
        eta_model = solve_direct(model.chain.P).distribution
        ber_model = bit_error_rate_discrete(model, eta_model)
        eta_net = solve_direct(nc.chain.P).distribution
        ber_net = stationary_event_rate(
            eta_net, nc.event_matrices["decision-error"]
        )
        assert ber_net == pytest.approx(ber_model, rel=1e-8, abs=1e-12)

    def test_network_is_bigger_but_equivalent(self, pair):
        """The network carries the noise hidden states explicitly, so its
        state space strictly contains the vectorized model's information."""
        params, model, nc = pair
        assert nc.n_states > model.n_states


class TestNetworkStructure:
    def test_component_wiring(self):
        net = build_cdr_network(**tiny_params())
        assert net.source_names == ["data", "nw", "nr"]
        assert net.machine_names == ["pd", "counter", "phase"]

    def test_events_registered(self):
        net = build_cdr_network(**tiny_params())
        nc = net.compile()
        assert set(nc.event_matrices) == {"slip", "decision-error"}

    def test_simulation_runs(self):
        rng = np.random.default_rng(0)
        net = build_cdr_network(**tiny_params())
        envs = net.simulate(50, rng)
        assert len(envs) == 50
        assert all("phase" in e and "pd" in e for e in envs)
