"""Tests for data sources (S14), phase detectors (S15), loop filters (S16)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdr import (
    PD_LABELS,
    PD_LAG,
    PD_LEAD,
    PD_NULL,
    alexander_phase_detector,
    bang_bang_decision,
    bang_bang_phase_detector,
    bernoulli_transition_source,
    counter_state_count,
    nrz_bit_source,
    passthrough_filter,
    stationary_transition_density,
    transition_run_length_source,
    updown_counter,
)


class TestTransitionSource:
    def test_state_count_is_run_length(self):
        src = transition_run_length_source("d", 0.5, 4)
        assert src.n_states == 4

    def test_emissions(self):
        src = transition_run_length_source("d", 0.5, 3)
        assert src.symbol(0) == 1  # transition symbol
        assert src.symbol(1) == 0
        assert src.symbol(2) == 0

    def test_forced_transition_at_max_run(self):
        src = transition_run_length_source("d", 0.3, 3)
        branches = dict(src.branches(2))
        assert branches == {0: pytest.approx(1.0)}

    def test_interior_transition_probability(self):
        src = transition_run_length_source("d", 0.3, 3)
        branches = dict(src.branches(0))
        assert branches[0] == pytest.approx(0.3)
        assert branches[1] == pytest.approx(0.7)

    def test_no_long_runs_in_sample(self):
        rng = np.random.default_rng(0)
        src = transition_run_length_source("d", 0.4, 4)
        path = src.sample_path(5000, rng)
        run = longest = 0
        for t in path:
            run = 0 if t == 1 else run + 1
            longest = max(longest, run)
        assert longest <= 3  # at most max_run_length - 1 zeros in a row

    def test_stationary_density_above_requested(self):
        # The forced transition at the run limit raises the effective
        # density above the per-symbol probability.
        src = transition_run_length_source("d", 0.3, 3)
        d = stationary_transition_density(src)
        assert 0.3 < d < 1.0

    def test_density_one_always_transitions(self):
        src = transition_run_length_source("d", 1.0, 3)
        assert stationary_transition_density(src) == pytest.approx(1.0)

    def test_unit_run_length_always_transitions(self):
        src = transition_run_length_source("d", 0.5, 1)
        assert src.n_states == 1
        assert stationary_transition_density(src) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            transition_run_length_source("d", 0.0, 3)
        with pytest.raises(ValueError):
            transition_run_length_source("d", 0.5, 0)

    @given(
        st.floats(min_value=0.05, max_value=1.0),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_stationary_density_closed_form(self, p, L):
        """eta(0) = 1 / E[run length]; truncated geometric run lengths."""
        src = transition_run_length_source("d", p, L)
        density = stationary_transition_density(src)
        # E[T] where T = min(Geometric(p), L)
        expected_run = sum((1 - p) ** k for k in range(L))
        assert density == pytest.approx(1.0 / expected_run, rel=1e-8)


class TestBernoulliSource:
    def test_density(self):
        src = bernoulli_transition_source("d", 0.4)
        assert stationary_transition_density(src) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            bernoulli_transition_source("d", 1.5)


class TestNRZBitSource:
    def test_state_count(self):
        src = nrz_bit_source("bits", 0.5, 3)
        assert src.n_states == 6

    def test_emits_bits(self):
        src = nrz_bit_source("bits", 0.5, 2)
        assert set(src.symbols) == {0, 1}

    def test_transition_flips_bit(self):
        rng = np.random.default_rng(1)
        src = nrz_bit_source("bits", 0.5, 4)
        bits = src.sample_path(4000, rng)
        transitions = np.abs(np.diff(bits))
        # overall transition density between the bare and forced rates
        assert 0.45 < transitions.mean() < 0.65

    def test_validation(self):
        with pytest.raises(ValueError):
            nrz_bit_source("b", 0.0, 2)
        with pytest.raises(ValueError):
            nrz_bit_source("b", 0.5, 0)


class TestBangBangDecision:
    def test_gated_by_transition(self):
        assert bang_bang_decision(0, 0.3) == PD_NULL
        assert bang_bang_decision(1, 0.3) == PD_LAG
        assert bang_bang_decision(1, -0.3) == PD_LEAD
        assert bang_bang_decision(1, 0.0) == PD_NULL

    def test_labels(self):
        assert PD_LABELS[PD_LAG] == "LAG"
        assert PD_LABELS[PD_LEAD] == "LEAD"
        assert PD_LABELS[PD_NULL] == "NULL"


class TestBangBangPhaseDetector:
    def test_single_state(self):
        pd = bang_bang_phase_detector()
        assert pd.n_states == 1

    def test_outputs(self):
        pd = bang_bang_phase_detector()
        assert pd.output(0, (1, 0.1)) == PD_LAG
        assert pd.output(0, (1, -0.1)) == PD_LEAD
        assert pd.output(0, (0, 0.1)) == PD_NULL

    def test_state_never_changes(self):
        pd = bang_bang_phase_detector()
        assert pd.next_state(0, (1, 0.5)) == 0


class TestAlexanderPhaseDetector:
    def test_transition_detection_via_prev_bit(self):
        pd = alexander_phase_detector()
        assert pd.output(0, (1, 0.2)) == PD_LAG     # 0 -> 1: transition
        assert pd.output(1, (1, 0.2)) == PD_NULL    # 1 -> 1: none
        assert pd.output(1, (0, -0.2)) == PD_LEAD

    def test_state_tracks_bit(self):
        pd = alexander_phase_detector()
        assert pd.next_state(0, (1, 0.0)) == 1
        assert pd.next_state(1, (1, 0.0)) == 1

    def test_rejects_non_bit(self):
        pd = alexander_phase_detector()
        with pytest.raises(ValueError, match="bit"):
            pd.next_state(0, (2, 0.0))


class TestUpDownCounter:
    def test_state_count_helper(self):
        assert counter_state_count(1) == 1
        assert counter_state_count(8) == 15
        with pytest.raises(ValueError):
            counter_state_count(0)

    def test_counts_up_and_down(self):
        c = updown_counter("c", 4)
        assert c.next_state(0, 1) == 1
        assert c.next_state(1, -1) == 0
        assert c.output(0, 1) == 0

    def test_overflow_up(self):
        c = updown_counter("c", 4)
        assert c.output(3, 1) == 1
        assert c.next_state(3, 1) == 0

    def test_overflow_down(self):
        c = updown_counter("c", 4)
        assert c.output(-3, -1) == -1
        assert c.next_state(-3, -1) == 0

    def test_null_input_holds(self):
        c = updown_counter("c", 4)
        assert c.next_state(2, 0) == 2
        assert c.output(2, 0) == 0

    def test_length_one_is_passthrough(self):
        c = updown_counter("c", 1)
        assert c.n_states == 1
        assert c.output(0, 1) == 1
        assert c.output(0, -1) == -1
        assert c.output(0, 0) == 0
        assert c.next_state(0, 1) == 0

    def test_rejects_bad_input(self):
        c = updown_counter("c", 4)
        with pytest.raises(ValueError, match="filter input"):
            c.next_state(0, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            updown_counter("c", 0)

    @given(st.integers(min_value=1, max_value=10), st.lists(
        st.sampled_from([-1, 0, 1]), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_overflow_rate_conservation(self, N, inputs):
        """Sum of inputs == (ups - downs) * N + final_state.

        The counter is a perfect accumulator modulo its overflow emissions:
        nothing is lost or created.
        """
        c = updown_counter("c", N)
        state = 0
        ups = downs = 0
        for o in inputs:
            out = c.output(state, o)
            state = c.next_state(state, o)
            ups += out == 1
            downs += out == -1
        assert sum(inputs) == (ups - downs) * N + state


class TestPassthroughFilter:
    def test_identity(self):
        f = passthrough_filter()
        assert f.output(0, 1) == 1
        assert f.output(0, -1) == -1
        assert f.next_state(0, 1) == 0
