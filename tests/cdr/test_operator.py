"""Tests for the matrix-free CDR transition operator."""

import numpy as np
import pytest

from repro.cdr import CDRTransitionOperator, PhaseGrid, build_cdr_chain
from repro.markov import solve_direct
from repro.noise import DiscreteDistribution, eye_opening_noise


def params(M=32, counter=3, g=2):
    grid = PhaseGrid(M)
    return dict(
        grid=grid,
        nw=eye_opening_noise(0.06, n_atoms=7),
        nr=DiscreteDistribution(
            [-grid.step, 0.0, grid.step], [0.2, 0.5, 0.3]
        ),
        counter_length=counter,
        phase_step_units=g,
        max_run_length=2,
    )


@pytest.fixture(scope="module")
def pair():
    p = params()
    return build_cdr_chain(**p), CDRTransitionOperator(**p)


class TestAgainstAssembledMatrix:
    def test_shapes_match(self, pair):
        model, op = pair
        assert op.n == model.n_states
        assert op.shape == (model.n_states, model.n_states)

    def test_rmatvec_matches(self, pair):
        model, op = pair
        rng = np.random.default_rng(0)
        for _ in range(5):
            x = rng.random(op.n)
            np.testing.assert_allclose(
                op.rmatvec(x), model.chain.P.T.dot(x), atol=1e-12
            )

    def test_matvec_matches(self, pair):
        model, op = pair
        rng = np.random.default_rng(1)
        for _ in range(5):
            v = rng.random(op.n)
            np.testing.assert_allclose(
                op.matvec(v), model.chain.P.dot(v), atol=1e-12
            )

    def test_adjoint_identity(self, pair):
        _, op = pair
        rng = np.random.default_rng(2)
        x, v = rng.random(op.n), rng.random(op.n)
        # <P^T x, v> == <x, P v>
        assert np.dot(op.rmatvec(x), v) == pytest.approx(
            np.dot(x, op.matvec(v)), rel=1e-12
        )

    def test_preserves_probability_mass(self, pair):
        _, op = pair
        x = np.full(op.n, 1.0 / op.n)
        y = op.rmatvec(x)
        assert y.sum() == pytest.approx(1.0, abs=1e-12)
        assert y.min() >= -1e-15

    def test_row_stochasticity_via_matvec(self, pair):
        _, op = pair
        # P @ ones == ones
        np.testing.assert_allclose(op.matvec(np.ones(op.n)), 1.0, atol=1e-12)

    def test_linear_operator_view(self, pair):
        _, op = pair
        lo = op.as_linear_operator()
        x = np.random.default_rng(3).random(op.n)
        np.testing.assert_allclose(lo.rmatvec(x), op.rmatvec(x))

    @pytest.mark.parametrize("M,counter,g", [(16, 1, 1), (64, 4, 8), (32, 2, 4)])
    def test_matches_across_configurations(self, M, counter, g):
        p = params(M=M, counter=counter, g=g)
        model = build_cdr_chain(**p)
        op = CDRTransitionOperator(**p)
        rng = np.random.default_rng(M + counter)
        x = rng.random(op.n)
        np.testing.assert_allclose(
            op.rmatvec(x), model.chain.P.T.dot(x), atol=1e-12
        )


class TestMatrixFreeStationary:
    def test_matches_direct_solve(self, pair):
        model, op = pair
        ref = solve_direct(model.chain.P).distribution
        with pytest.warns(DeprecationWarning, match="stationary_power"):
            res = op.stationary_power(tol=1e-11)
        assert res.converged
        # The deprecated shim now routes through the solver registry, so
        # the method reads "power" like every other registry solve.
        assert res.method == "power"
        assert np.abs(res.distribution - ref).sum() < 1e-8

    def test_registry_path_matches_shim(self, pair):
        from repro.markov import stationary_distribution

        _, op = pair
        with pytest.warns(DeprecationWarning):
            shim = op.stationary_power(tol=1e-11)
        direct = stationary_distribution(op, method="power", tol=1e-11)
        np.testing.assert_allclose(shim.distribution, direct.distribution)

    def test_phase_marginal_matches(self, pair):
        model, op = pair
        with pytest.warns(DeprecationWarning):
            res = op.stationary_power(tol=1e-11)
        np.testing.assert_allclose(
            op.phase_marginal(res.distribution),
            model.phase_marginal(res.distribution),
            atol=1e-14,
        )

    def test_damping_validation(self, pair):
        _, op = pair
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                op.stationary_power(damping=0.0)

    def test_large_model_runs_without_assembly(self):
        """A model size whose assembled matrix would be heavy builds and
        applies instantly matrix-free."""
        p = params(M=4096, counter=8, g=256)
        op = CDRTransitionOperator(**p)
        assert op.n == 2 * 15 * 4096
        x = np.full(op.n, 1.0 / op.n)
        y = op.rmatvec(x)
        assert y.sum() == pytest.approx(1.0, abs=1e-10)


class TestValidation:
    def test_bad_counter(self):
        p = params()
        p["counter_length"] = 0
        with pytest.raises(ValueError):
            CDRTransitionOperator(**p)

    def test_bad_step(self):
        p = params()
        p["phase_step_units"] = 0
        with pytest.raises(ValueError):
            CDRTransitionOperator(**p)

    def test_moves_exceed_grid(self):
        p = params(M=4, g=3)
        p["nr"] = DiscreteDistribution.delta(0.5)
        with pytest.raises(ValueError, match="exceed"):
            CDRTransitionOperator(**p)

    def test_vector_size_checked(self, pair):
        _, op = pair
        with pytest.raises(ValueError):
            op.rmatvec(np.ones(3))
        with pytest.raises(ValueError):
            op.matvec(np.ones(3))

    def test_repr(self, pair):
        _, op = pair
        assert "CDRTransitionOperator" in repr(op)
