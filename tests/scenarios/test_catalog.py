"""Built-in scenarios: every one builds, evaluates, and agrees across
backends at a scaled-down size (the full fast-size agreement is what
``repro scenarios verify`` checks against the goldens)."""

import numpy as np
import pytest

from repro.scenarios import compare_measures, get_scenario, run_scenario
from repro.scenarios.bangbang import build_bangbang_operator, locked_mask
from repro.scenarios.measures import (
    expected_value_trajectory,
    first_passage_survival,
    tv_settling_time,
)

pytestmark = pytest.mark.scenario

#: Scaled-down parameter patches keeping each cross-backend run fast.
SMALL = {
    "baseline": {"n_phase_points": 32},
    "alexander-offset": {"n_phase_points": 32},
    "bangbang-freq": {"n_phase_points": 32, "freq_max": 1},
    "mesochronous-settle": {"n_phase_points": 32, "settle_horizon": 600},
}


@pytest.fixture(scope="module")
def runs():
    cache = {}

    def get(name, backend):
        key = (name, backend)
        if key not in cache:
            cache[key] = run_scenario(
                name, backend=backend, params_override=SMALL[name]
            )
        return cache[key]

    return get


@pytest.mark.parametrize("name", sorted(SMALL))
class TestCrossBackendAgreement:
    def test_backends_agree_within_golden_tolerances(self, name, runs):
        scenario = get_scenario(name)
        reference = runs(name, "assembled")
        for backend in scenario.backends:
            if backend == "assembled":
                continue
            other = runs(name, backend)
            diff = compare_measures(
                reference.measures, other.measures, dict(scenario.tolerances)
            )
            assert diff.ok, f"{name} assembled vs {backend}: {diff.describe()}"

    def test_measures_match_declaration(self, name, runs):
        scenario = get_scenario(name)
        run = runs(name, "assembled")
        assert set(run.measures) == set(scenario.measures)
        assert all(isinstance(v, float) for v in run.measures.values())

    def test_measures_are_finite(self, name, runs):
        for value in runs(name, "assembled").measures.values():
            assert np.isfinite(value)


class TestScenarioPhysics:
    """Sanity of the modeled effects, not just plumbing."""

    def test_alexander_offset_pulls_phase_negative(self, runs):
        base = runs("baseline", "assembled").measures
        off = runs("alexander-offset", "assembled").measures
        # The loop servos the sampled zero crossing: a +offset at the
        # sampler drags the stationary phase error below the baseline's.
        assert off["phase_mean_ui"] < base["phase_mean_ui"]
        assert abs(off["offset_tracking_error_ui"]) < 0.05

    def test_bangbang_stationary_is_frequency_locked(self, runs):
        measures = runs("bangbang-freq", "assembled").measures
        assert measures["p_freq_locked"] > 0.99
        assert measures["acq_mean_symbols"] > 0.0
        assert measures["acq_p99_symbols"] >= 1.0

    def test_mesochronous_settles_and_decays(self, runs):
        measures = runs("mesochronous-settle", "assembled").measures
        assert 0 < measures["settle_symbols"] < 600
        assert measures["excess_error_sum"] > 0.0

    def test_rejects_unsupported_backend(self):
        with pytest.raises(ValueError, match="supports backends"):
            run_scenario("bangbang-freq", backend="kronecker")


class TestBangBangChain:
    def test_operator_rows_are_stochastic(self):
        params = get_scenario("bangbang-freq").params_for("fast")
        params.update(SMALL["bangbang-freq"])
        op = build_bangbang_operator(params)
        np.testing.assert_allclose(op.row_sums(), 1.0, atol=1e-12)

    def test_locked_mask_shape(self):
        params = get_scenario("bangbang-freq").params_for("fast")
        mask = locked_mask(params)
        n = (2 * params["freq_max"] + 1) * params["n_phase_points"]
        assert mask.shape == (n,)
        assert 0 < mask.sum() < n

    def test_first_passage_matches_assembled_reference(self):
        # Survival iteration against the sparse-LU hitting-time solver on
        # the identical assembled chain: the backend-agnostic measure
        # kernel must not drift from the reference implementation.
        from repro.markov import MarkovChain, hitting_time_moments

        params = get_scenario("bangbang-freq").params_for("fast")
        params.update(SMALL["bangbang-freq"])
        op = build_bangbang_operator(params)
        chain = MarkovChain(op.to_csr())
        mask = locked_mask(params)
        targets = np.flatnonzero(mask)
        mean_ref, _ = hitting_time_moments(chain, targets.tolist())
        start_state = (2 * params["freq_max"]) * params["n_phase_points"]
        start = np.zeros(op.n)
        start[start_state] = 1.0
        summary = first_passage_survival(op, start, mask)
        assert summary.mean_symbols == pytest.approx(
            mean_ref[start_state], rel=1e-6
        )
        assert summary.p_unabsorbed <= 1e-12


class TestMeasureKernels:
    def test_tv_settling_time_zero_when_started_stationary(self):
        params = get_scenario("bangbang-freq").params_for("fast")
        params.update(SMALL["bangbang-freq"])
        op = build_bangbang_operator(params)
        from repro.markov.stationary import stationary_distribution

        pi = stationary_distribution(op, method="krylov", tol=1e-12).distribution
        assert tv_settling_time(op, pi, pi, 0.01, 100) == 0

    def test_trajectory_converges_to_stationary_mean(self):
        params = get_scenario("bangbang-freq").params_for("fast")
        params.update(SMALL["bangbang-freq"])
        op = build_bangbang_operator(params)
        from repro.markov.stationary import stationary_distribution

        pi = stationary_distribution(op, method="krylov", tol=1e-12).distribution
        f = np.linspace(0.0, 1.0, op.n)
        start = np.zeros(op.n)
        start[0] = 1.0
        traj = expected_value_trajectory(op, start, f, 3000)
        assert traj[-1] == pytest.approx(float(pi @ f), abs=1e-6)

    def test_first_passage_validates_inputs(self):
        op = build_bangbang_operator(
            {**get_scenario("bangbang-freq").params_for("fast"),
             **SMALL["bangbang-freq"]}
        )
        start = np.zeros(op.n)
        start[0] = 1.0
        with pytest.raises(ValueError, match="non-empty"):
            first_passage_survival(op, start, np.zeros(op.n, dtype=bool))
        with pytest.raises(ValueError, match="quantile"):
            first_passage_survival(
                op, start, locked_mask({**get_scenario("bangbang-freq").params_for("fast"), **SMALL["bangbang-freq"]}), quantile=1.5
            )
