"""CLI surface: ``repro scenarios list | run | verify``."""

import json

import pytest

from repro.cli import main
from repro.scenarios import scenario_names

pytestmark = pytest.mark.scenario


class TestList:
    def test_lists_every_scenario(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out
        assert "arXiv:1905.00273" in out


class TestRun:
    def test_run_prints_measures(self, capsys):
        code = main(["scenarios", "run", "baseline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ber" in out and "slip_rate" in out

    def test_run_json(self, capsys):
        code = main(["scenarios", "run", "baseline", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["scenario"] == "baseline"
        assert payload["spec_digest"].startswith("sha256:")
        assert set(payload["measures"]) == {
            "ber", "ber_discrete", "slip_rate", "phase_mean_ui",
            "phase_rms_ui",
        }

    def test_run_unknown_scenario_is_one_line_error(self, capsys):
        code = main(["scenarios", "run", "no-such"])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")

    def test_run_backend_override(self, capsys):
        code = main(
            ["scenarios", "run", "baseline", "--backend", "matrix-free",
             "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["backend"] == "matrix-free"

    def test_update_golden_writes_to_custom_dir(self, tmp_path, capsys):
        code = main(
            ["scenarios", "run", "baseline", "--update-golden",
             "--golden-dir", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "baseline.fast.json").exists()
        assert (tmp_path / "baseline.fast.manifest.json").exists()


class TestVerify:
    def test_verify_single_scenario_passes(self, capsys):
        code = main(["scenarios", "verify", "baseline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out

    def test_verify_writes_report_artifact(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        code = main(
            ["scenarios", "verify", "baseline", "--backend", "assembled",
             "--report", str(report)]
        )
        assert code == 0
        payload = json.loads(report.read_text())
        assert payload["schema"] == "repro.scenario-verify/1"
        assert payload["ok"] is True
        assert payload["results"][0]["scenario"] == "baseline"

    def test_verify_missing_golden_fails(self, tmp_path, capsys):
        code = main(
            ["scenarios", "verify", "baseline", "--golden-dir",
             str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "missing-golden" in out
        assert "FAIL" in out
