"""Golden store + verification battery.

The checked-in goldens themselves are exercised end to end: ``verify``
must pass for every catalog scenario on every backend it registers
(the PR's acceptance criterion), and the failure taxonomy -- tampered,
stale, missing -- must be detected, not silently compared around.
"""

import json

import numpy as np
import pytest

from repro.obs import load_run_manifest
from repro.scenarios import (
    generate_golden,
    golden_dir,
    golden_path,
    list_goldens,
    load_golden,
    run_scenario,
    scenario_names,
    verify_catalog,
    verify_scenario,
    write_golden,
)
from repro.scenarios.golden import manifest_path

pytestmark = pytest.mark.scenario

SMALL = {"n_phase_points": 16}  # baseline patch for tmp-golden tests


class TestCheckedInGoldens:
    def test_every_scenario_has_a_fast_golden(self):
        have = {s for s, size in list_goldens() if size == "fast"}
        assert set(scenario_names()) <= have

    def test_goldens_are_internally_consistent(self):
        for scenario, size in list_goldens():
            golden = load_golden(scenario, size)
            assert golden.integrity_errors() == []
            assert golden.spec_digest.startswith("sha256:")
            assert golden.measures

    def test_goldens_have_provenance_manifests(self):
        for scenario, size in list_goldens():
            golden = load_golden(scenario, size)
            assert golden.provenance.get("manifest")
            manifest = load_run_manifest(manifest_path(scenario, size))
            assert manifest["kind"] == "scenario-golden"
            assert manifest["results"]["scenario"] == scenario

    @pytest.mark.parametrize("name", sorted({"baseline", "alexander-offset",
                                             "bangbang-freq",
                                             "mesochronous-settle"}))
    def test_verify_passes_on_all_backends(self, name):
        verification = verify_scenario(name)
        assert verification.ok, verification.describe()
        checked = {c.backend for c in verification.checks}
        assert {"assembled", "matrix-free"} <= checked

    def test_catalog_verify_report(self):
        report = verify_catalog(names=["baseline"])
        assert report.ok
        payload = report.to_dict()
        assert payload["schema"] == "repro.scenario-verify/1"
        json.dumps(payload)  # the CI artifact must be serializable


class TestGoldenLifecycle:
    def test_generate_then_verify_roundtrip(self, tmp_path):
        directory = str(tmp_path)
        run = generate_golden("baseline", directory=directory)
        assert run.scenario == "baseline"
        golden = load_golden("baseline", directory=directory)
        assert golden.integrity_errors() == []
        assert golden.measures == run.measures
        verification = verify_scenario("baseline", directory=directory)
        assert verification.ok, verification.describe()
        manifest = load_run_manifest(manifest_path("baseline", "fast", directory))
        assert manifest["spec"]["scenario"] == "baseline"
        assert manifest["spans"], "golden generation must be traced"

    def test_missing_golden_status(self, tmp_path):
        verification = verify_scenario("baseline", directory=str(tmp_path))
        assert verification.status == "missing-golden"
        assert not verification.ok

    def test_tampered_measures_detected(self, tmp_path):
        directory = str(tmp_path)
        generate_golden("baseline", directory=directory)
        path = golden_path("baseline", "fast", directory)
        payload = json.loads(open(path).read())
        payload["measures"]["ber"] = 0.5  # the lie
        with open(path, "w") as fh:
            json.dump(payload, fh)
        verification = verify_scenario("baseline", directory=directory)
        assert verification.status == "tampered"
        assert "measures_digest" in verification.detail

    def test_tampered_spec_detected(self, tmp_path):
        directory = str(tmp_path)
        generate_golden("baseline", directory=directory)
        path = golden_path("baseline", "fast", directory)
        payload = json.loads(open(path).read())
        payload["spec"]["params"]["nw_std"] = 0.5
        with open(path, "w") as fh:
            json.dump(payload, fh)
        verification = verify_scenario("baseline", directory=directory)
        assert verification.status == "tampered"
        assert "spec_digest" in verification.detail

    def test_wrong_schema_rejected(self, tmp_path):
        directory = str(tmp_path)
        generate_golden("baseline", directory=directory)
        path = golden_path("baseline", "fast", directory)
        payload = json.loads(open(path).read())
        payload["schema"] = "repro.something-else/9"
        with open(path, "w") as fh:
            json.dump(payload, fh)
        verification = verify_scenario("baseline", directory=directory)
        assert verification.status == "tampered"

    def test_stale_spec_detected(self, tmp_path, monkeypatch):
        # Golden generated from yesterday's catalog parameters: verify
        # must flag staleness instead of comparing against them.
        directory = str(tmp_path)
        run = run_scenario("baseline", params_override={"nw_std": 0.123})
        write_golden(run, directory=directory)
        verification = verify_scenario("baseline", directory=directory)
        assert verification.status == "stale-spec"
        assert "regenerate" in verification.detail

    def test_mismatch_detected(self, tmp_path):
        # A golden whose spec matches the catalog but whose measure
        # values are subtly wrong (a regression, from verify's view).
        directory = str(tmp_path)
        run = generate_golden("baseline", directory=directory)
        path = golden_path("baseline", "fast", directory)
        payload = json.loads(open(path).read())
        doctored = dict(run.measures)
        doctored["ber"] *= 1.5
        from repro.scenarios.spec import canonical_digest

        payload["measures"] = doctored
        payload["measures_digest"] = canonical_digest(
            {k: float(v) for k, v in sorted(doctored.items())}
        )
        with open(path, "w") as fh:
            json.dump(payload, fh)
        verification = verify_scenario(
            "baseline", backends=["assembled"], directory=directory
        )
        assert verification.status == "mismatch"
        assert any(
            m.name == "ber"
            for c in verification.checks
            if c.diff is not None
            for m in c.diff.mismatches
        )

    def test_unknown_backend_filter_rejected(self):
        with pytest.raises(ValueError, match="supports backends"):
            verify_scenario("bangbang-freq", backends=["kronecker"])

    def test_list_goldens_skips_manifests(self, tmp_path):
        directory = str(tmp_path)
        generate_golden("baseline", directory=directory)
        pairs = list_goldens(directory)
        assert pairs == [("baseline", "fast")]


class TestRunIdentity:
    def test_override_changes_spec_digest(self):
        plain = run_scenario("baseline", params_override=SMALL)
        bumped = run_scenario(
            "baseline", params_override={**SMALL, "nw_std": 0.09}
        )
        assert plain.spec.digest() != bumped.spec.digest()

    def test_measures_digest_tracks_values(self):
        run = run_scenario("baseline", params_override=SMALL)
        again = run_scenario("baseline", params_override=SMALL)
        assert run.measures_digest() == again.measures_digest()
        assert np.isfinite(list(run.measures.values())).all()
