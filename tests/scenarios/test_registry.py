"""Scenario registry: registration contract, lookup, catalog contents."""

import pytest

from repro.scenarios import get_scenario, scenario_names, scenario_table
from repro.scenarios.registry import ScenarioModel, register_scenario
from repro.scenarios.tolerance import Tolerance

pytestmark = pytest.mark.scenario

BUILTINS = {
    "baseline",
    "alexander-offset",
    "bangbang-freq",
    "mesochronous-settle",
}


class TestCatalog:
    def test_builtins_registered(self):
        assert BUILTINS <= set(scenario_names())

    def test_names_sorted(self):
        names = scenario_names()
        assert list(names) == sorted(names)

    def test_table_matches_names(self):
        assert tuple(s.name for s in scenario_table()) == scenario_names()

    def test_every_scenario_declares_fast_size(self):
        for scenario in scenario_table():
            assert "fast" in scenario.sizes
            assert scenario.measures
            assert scenario.citation

    def test_every_scenario_supports_both_required_backends(self):
        # The verification battery's contract: every catalog scenario runs
        # on the assembled and the matrix-free backend.
        for scenario in scenario_table():
            assert {"assembled", "matrix-free"} <= set(scenario.backends)

    def test_unknown_scenario_lists_choices(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_params_for_returns_fresh_copies(self):
        scenario = get_scenario("baseline")
        a = scenario.params_for("fast")
        a["n_phase_points"] = -1
        assert scenario.params_for("fast")["n_phase_points"] > 0

    def test_params_for_unknown_size(self):
        with pytest.raises(ValueError, match="has no size"):
            get_scenario("baseline").params_for("gigantic")

    def test_tolerance_fallback(self):
        scenario = get_scenario("baseline")
        default = scenario.tolerance_for("some-unlisted-measure")
        assert default == scenario.tolerances["default"]
        assert scenario.tolerance_for("slip_rate") != default


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_scenario(
                "baseline",
                title="imposter",
                citation="nowhere",
                measures=("x",),
                sizes={"fast": {}},
            )
            class Imposter:
                @staticmethod
                def build(params, backend="assembled"):
                    return ScenarioModel(chain=None, backend=backend, n_states=0)

                @staticmethod
                def evaluate(model, params, *, solver, tol):
                    return {"x": 0.0}

    def test_fast_size_required(self):
        with pytest.raises(ValueError, match="'fast' size"):
            register_scenario(
                "sizeless",
                title="t",
                citation="c",
                measures=("x",),
                sizes={"full": {}},
            )

    def test_measures_required(self):
        with pytest.raises(ValueError, match="measures"):
            register_scenario(
                "measureless",
                title="t",
                citation="c",
                measures=(),
                sizes={"fast": {}},
            )

    def test_default_tolerance_injected(self):
        scenario = get_scenario("bangbang-freq")
        assert "default" in scenario.tolerances
        assert isinstance(scenario.tolerances["default"], Tolerance)
