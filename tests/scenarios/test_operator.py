"""BranchSumOperator: matrix-free/assembled equivalence by construction."""

import numpy as np
import pytest

from repro.markov.chain import MarkovChain
from repro.markov.linop import as_operator
from repro.scenarios.operator import BranchSumOperator

pytestmark = [pytest.mark.scenario, pytest.mark.operator]


def cyclic_op(n=8, p=0.7):
    """Stay with 1-p, advance one state (mod n) with p."""
    idx = np.arange(n)
    return BranchSumOperator(
        n,
        [
            (np.full(n, 1.0 - p), idx),
            (np.full(n, p), (idx + 1) % n),
        ],
    )


def random_branch_op(n=40, n_branches=5, seed=7):
    rng = np.random.default_rng(seed)
    idx = np.arange(n)
    raw = rng.uniform(0.05, 1.0, (n_branches, n))
    raw /= raw.sum(axis=0, keepdims=True)
    terms = [
        (raw[b], rng.integers(0, n, size=n)) for b in range(n_branches)
    ]
    del idx
    return BranchSumOperator(n, terms)


class TestConstruction:
    def test_rejects_non_stochastic(self):
        n = 4
        with pytest.raises(ValueError, match="row-stochastic"):
            BranchSumOperator(n, [(np.full(n, 0.9), np.arange(n))])

    def test_rejects_negative_weights(self):
        n = 4
        with pytest.raises(ValueError, match="non-negative"):
            BranchSumOperator(
                n,
                [
                    (np.array([1.1, 1.0, 1.0, 1.0]), np.arange(n)),
                    (np.array([-0.1, 0.0, 0.0, 0.0]), np.arange(n)),
                ],
            )

    def test_rejects_out_of_range_destination(self):
        n = 4
        with pytest.raises(ValueError, match="out of range"):
            BranchSumOperator(n, [(np.ones(n), np.array([0, 1, 2, 4]))])

    def test_rejects_empty_terms(self):
        with pytest.raises(ValueError, match="at least one branch"):
            BranchSumOperator(3, [])

    def test_drops_dead_branches(self):
        n = 3
        op = BranchSumOperator(
            n,
            [
                (np.ones(n), np.arange(n)),
                (np.zeros(n), np.arange(n)),
            ],
        )
        assert op.n_terms == 1


class TestBackendEquivalence:
    """The tentpole invariant: to_csr() and matvec/rmatvec describe the
    same TPM, so assembled and matrix-free scenario builds cannot drift
    apart."""

    @pytest.mark.parametrize("make", [cyclic_op, random_branch_op])
    def test_to_csr_matches_matvec(self, make):
        op = make()
        P = op.to_csr()
        rng = np.random.default_rng(3)
        v = rng.normal(size=op.n)
        np.testing.assert_allclose(op.matvec(v), P @ v, atol=1e-14)
        np.testing.assert_allclose(op.rmatvec(v), P.T @ v, atol=1e-14)

    @pytest.mark.parametrize("make", [cyclic_op, random_branch_op])
    def test_to_csr_is_valid_chain(self, make):
        chain = MarkovChain(make().to_csr())
        rows = np.asarray(chain.P.sum(axis=1)).ravel()
        np.testing.assert_allclose(rows, 1.0, atol=1e-12)

    @pytest.mark.parametrize("make", [cyclic_op, random_branch_op])
    def test_diagonal_and_row_sums(self, make):
        op = make()
        P = op.to_csr()
        np.testing.assert_allclose(op.diagonal(), P.diagonal(), atol=1e-14)
        np.testing.assert_allclose(
            op.row_sums(), np.asarray(P.sum(axis=1)).ravel(), atol=1e-14
        )

    def test_duplicate_destinations_accumulate(self):
        # Two branches landing on the same (row, col) must sum, exactly as
        # coo -> csr sum_duplicates does.
        n = 2
        op = BranchSumOperator(
            n,
            [
                (np.full(n, 0.5), np.zeros(n, dtype=int)),
                (np.full(n, 0.5), np.zeros(n, dtype=int)),
            ],
        )
        P = op.to_csr()
        assert P[0, 0] == pytest.approx(1.0)
        v = np.array([2.0, 3.0])
        np.testing.assert_allclose(op.matvec(v), P @ v)

    def test_speaks_transition_operator_protocol(self):
        op = cyclic_op()
        wrapped = as_operator(op)
        v = np.ones(op.n) / op.n
        np.testing.assert_allclose(wrapped.rmatvec(v), op.rmatvec(v))
