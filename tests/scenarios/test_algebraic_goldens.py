"""Algebraic coarsening against the catalog goldens.

The phase-pairing coarsening of the paper needs a phase grid; the
bang-bang frequency loop and the mesochronous retimer are exactly the
catalog entries where extra state structure makes that lumping either
unavailable or not obviously right.  These tests pin the acceptance
criterion that both scenarios solve through the *algebraic*
strength-of-connection hierarchy and still reproduce the checked-in
golden measures.
"""

import numpy as np
import pytest

from repro.markov import stationary_distribution
from repro.scenarios import get_scenario, load_golden

pytestmark = [pytest.mark.scenario, pytest.mark.amg]

SCENARIOS = ["bangbang-freq", "mesochronous-settle"]


def _algebraic_solve(name):
    scenario = get_scenario(name)
    params = scenario.params_for("fast")
    model = scenario.build(params, backend="assembled")
    result = stationary_distribution(
        model.chain, method="multigrid", strategy="algebraic",
        coarsest_size=64, tol=1e-11,
    )
    return scenario, params, model, result


def _stationary_measures(name, params, model, pi):
    """The golden measures derivable from the stationary vector alone."""
    if name == "bangbang-freq":
        from repro.cdr.phase_error import PhaseGrid

        M = int(params["n_phase_points"])
        F = int(params["freq_max"])
        phi = np.tile(PhaseGrid(M).values, 2 * F + 1)
        return {
            "p_freq_locked": float(pi[F * M:(F + 1) * M].sum()),
            "phase_rms_ui": float(np.sqrt(np.dot(pi, phi ** 2))),
        }
    cdr_model = model.extras["model"]
    phase_pi = cdr_model.phase_marginal(pi)
    values = cdr_model.grid.values
    threshold = float(params["error_threshold_ui"])
    return {
        "phase_rms_ui": float(np.sqrt(np.dot(phase_pi, values ** 2))),
        "stationary_error_rate": float(
            phase_pi[np.abs(values) > threshold].sum()
        ),
    }


class TestAlgebraicCoarseningGoldens:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_hierarchy_actually_coarsens(self, name):
        from repro.markov import build_hierarchy

        scenario = get_scenario(name)
        model = scenario.build(scenario.params_for("fast"), backend="assembled")
        hierarchy = build_hierarchy(
            model.chain, strategy="algebraic", coarsest_size=64
        )
        assert hierarchy.n_levels > 1
        assert hierarchy.level_sizes[-1] < model.n_states

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_algebraic_solve_matches_reference(self, name):
        _, _, model, result = _algebraic_solve(name)
        assert result.converged
        reference = stationary_distribution(
            model.chain, method="krylov", tol=1e-12
        )
        assert np.abs(result.distribution - reference.distribution).sum() < 1e-7

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_stationary_measures_match_golden(self, name):
        scenario, params, model, result = _algebraic_solve(name)
        assert result.converged
        golden = load_golden(name, "fast")
        measured = _stationary_measures(name, params, model, result.distribution)
        for measure, value in measured.items():
            np.testing.assert_allclose(
                value, golden.measures[measure], rtol=1e-5, atol=1e-8,
                err_msg=f"{name}:{measure} drifted from the golden under "
                        "algebraic coarsening",
            )
