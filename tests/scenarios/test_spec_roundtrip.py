"""ScenarioSpec round-tripping: build -> serialize -> deserialize must
preserve the canonical digest (the golden staleness check depends on it)."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scenarios import get_scenario, scenario_names
from repro.scenarios.spec import ScenarioSpec, canonical_digest, canonical_json

pytestmark = pytest.mark.scenario

param_values = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.booleans(),
    st.text(max_size=20),
    st.none(),
)
param_dicts = st.dictionaries(
    st.text(min_size=1, max_size=15), param_values, max_size=8
)
specs = st.builds(
    ScenarioSpec,
    scenario=st.text(min_size=1, max_size=20),
    size=st.sampled_from(["fast", "full", "tiny"]),
    params=param_dicts,
)


class TestCanonicalJson:
    @given(param_dicts)
    def test_key_order_invariant(self, params):
        reordered = dict(reversed(list(params.items())))
        assert canonical_json(params) == canonical_json(reordered)
        assert canonical_digest(params) == canonical_digest(reordered)

    @given(param_dicts)
    def test_roundtrip_through_json(self, params):
        text = canonical_json(params)
        assert canonical_json(json.loads(text)) == text

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="finite"):
            canonical_json({"x": float("nan")})
        with pytest.raises(ValueError, match="finite"):
            canonical_json({"x": float("inf")})

    def test_rejects_non_string_keys(self):
        with pytest.raises(ValueError, match="keys must be strings"):
            canonical_json({1: 2.0})

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(ValueError, match="JSON scalars"):
            canonical_json({"x": object()})


class TestSpecRoundtrip:
    @given(specs)
    def test_dict_roundtrip_preserves_digest(self, spec):
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.digest() == spec.digest()

    @given(specs)
    def test_json_roundtrip_preserves_digest(self, spec):
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone.digest() == spec.digest()

    @given(specs)
    def test_digest_is_stable_and_tagged(self, spec):
        assert spec.digest() == spec.digest()
        assert spec.digest().startswith("sha256:")

    @given(specs, specs)
    def test_distinct_specs_distinct_digests(self, a, b):
        if a != b:
            assert a.digest() != b.digest()

    def test_unknown_fields_rejected(self):
        payload = ScenarioSpec("s", "fast", {"a": 1}).to_dict()
        payload["surprise"] = True
        with pytest.raises(ValueError, match="unknown scenario-spec"):
            ScenarioSpec.from_dict(payload)

    def test_empty_names_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec("", "fast", {})
        with pytest.raises(ValueError):
            ScenarioSpec("s", "", {})


class TestCatalogSpecs:
    def test_every_registered_size_roundtrips(self):
        # The property the goldens rely on, on the actual catalog data.
        for name in scenario_names():
            scenario = get_scenario(name)
            for size in scenario.sizes:
                spec = ScenarioSpec(
                    scenario=name, size=size, params=scenario.params_for(size)
                )
                clone = ScenarioSpec.from_json(spec.to_json())
                assert clone.digest() == spec.digest()
