"""Golden-tolerance comparison helpers: properties the battery relies on.

The hypothesis properties pin the two contracts the ISSUE calls out:
*reflexivity* (every measure dict matches itself under any tolerance) and
*symmetry of mismatch reporting* (swapping the sides of a comparison
swaps the report, nothing else).
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scenarios.tolerance import (
    MeasureDiff,
    Tolerance,
    compare_measures,
    values_close,
)

pytestmark = pytest.mark.scenario

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)
any_float = st.one_of(
    finite,
    st.just(float("nan")),
    st.just(float("inf")),
    st.just(float("-inf")),
)
measure_names = st.sampled_from(
    ["ber", "slip_rate", "phase_rms_ui", "settle_symbols", "acq_mean"]
)
measure_dicts = st.dictionaries(measure_names, any_float, max_size=5)
tolerances = st.builds(
    Tolerance,
    rtol=st.floats(min_value=0.0, max_value=1e-2),
    atol=st.floats(min_value=0.0, max_value=1e-6),
)
tolerance_maps = st.dictionaries(
    st.one_of(st.just("default"), measure_names), tolerances, max_size=4
)


class TestValuesClose:
    @given(any_float, tolerances)
    def test_reflexive(self, x, tol):
        assert values_close(x, x, tol)

    @given(any_float, any_float, tolerances)
    def test_symmetric(self, a, b, tol):
        assert values_close(a, b, tol) == values_close(b, a, tol)

    def test_nan_matches_only_nan(self):
        tol = Tolerance(rtol=1.0, atol=1e300)
        assert values_close(float("nan"), float("nan"), tol)
        assert not values_close(float("nan"), 0.0, tol)
        assert not values_close(0.0, float("nan"), tol)

    def test_inf_needs_matching_sign(self):
        tol = Tolerance(rtol=1.0, atol=1e300)
        assert values_close(math.inf, math.inf, tol)
        assert not values_close(math.inf, -math.inf, tol)
        assert not values_close(math.inf, 1e308, tol)

    def test_symmetric_relative_form(self):
        # numpy.isclose(a, b) != numpy.isclose(b, a) in general; the
        # symmetric form must not depend on argument order even right at
        # the boundary.
        tol = Tolerance(rtol=0.1, atol=0.0)
        a, b = 1.0, 1.1000000001
        assert values_close(a, b, tol) == values_close(b, a, tol)

    def test_rejects_negative_tolerances(self):
        with pytest.raises(ValueError):
            Tolerance(rtol=-1e-9)
        with pytest.raises(ValueError):
            Tolerance(atol=-1e-9)

    def test_roundtrip_dict(self):
        tol = Tolerance(rtol=3e-5, atol=7e-11)
        assert Tolerance.from_dict(tol.to_dict()) == tol


class TestCompareMeasures:
    @given(measure_dicts, tolerance_maps)
    def test_reflexive(self, measures, tols):
        diff = compare_measures(measures, measures, tols)
        assert diff.ok
        assert diff == MeasureDiff()

    @given(measure_dicts, measure_dicts, tolerance_maps)
    def test_swap_symmetry(self, left, right, tols):
        forward = compare_measures(left, right, tols)
        backward = compare_measures(right, left, tols)
        assert backward == forward.swapped()
        assert forward == backward.swapped()
        assert forward.ok == backward.ok

    @given(measure_dicts, measure_dicts, tolerance_maps)
    def test_swapped_is_involution(self, left, right, tols):
        diff = compare_measures(left, right, tols)
        assert diff.swapped().swapped() == diff

    def test_missing_and_extra_sides(self):
        diff = compare_measures({"a": 1.0}, {"b": 2.0})
        assert diff.missing == ("a",)
        assert diff.extra == ("b",)
        assert not diff.ok
        back = diff.swapped()
        assert back.missing == ("b",)
        assert back.extra == ("a",)

    def test_per_measure_tolerance_beats_default(self):
        tols = {
            "default": Tolerance(rtol=0.0, atol=0.0),
            "loose": Tolerance(rtol=0.5, atol=0.0),
        }
        diff = compare_measures(
            {"loose": 1.0, "tight": 1.0},
            {"loose": 1.2, "tight": 1.0 + 1e-9},
            tols,
        )
        assert [m.name for m in diff.mismatches] == ["tight"]

    def test_describe_names_the_failure(self):
        diff = compare_measures({"ber": 1e-9}, {"ber": 2e-9})
        assert "ber" in diff.describe()
        assert compare_measures({"x": 1.0}, {"x": 1.0}).describe()

    def test_to_dict_serializes_nonfinite(self):
        import json

        diff = compare_measures({"a": math.inf}, {"a": 1.0})
        json.dumps(diff.to_dict())  # must not raise
