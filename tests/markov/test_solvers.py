"""Tests for the stationary-distribution solvers (S4) and the front-end."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.markov import (
    MarkovChain,
    solve_direct,
    solve_gauss_seidel,
    solve_jacobi,
    solve_krylov,
    solve_power,
    stationary_distribution,
)
from repro.markov.solvers.result import (
    StationaryResult,
    prepare_initial_guess,
    residual_norm,
)

from .conftest import random_chains

ALL_SOLVERS = [
    ("direct", solve_direct),
    ("power", solve_power),
    ("jacobi", solve_jacobi),
    ("gauss-seidel", solve_gauss_seidel),
    ("krylov", solve_krylov),
]


def reference_stationary(chain):
    """Dense eigen-decomposition reference for small chains."""
    w, v = np.linalg.eig(chain.to_dense().T)
    i = int(np.argmin(np.abs(w - 1.0)))
    x = np.real(v[:, i])
    x = np.abs(x)
    return x / x.sum()


@pytest.mark.parametrize("name,solver", ALL_SOLVERS)
class TestSolversAgainstReference:
    def test_two_state(self, name, solver, two_state_chain):
        res = solver(two_state_chain.P, tol=1e-12)
        np.testing.assert_allclose(res.distribution, [0.6, 0.4], atol=1e-8)
        assert res.converged
        assert res.method.startswith(name.split("-")[0])

    def test_birth_death(self, name, solver, birth_death_chain):
        res = solver(birth_death_chain.P, tol=1e-12)
        ref = reference_stationary(birth_death_chain)
        np.testing.assert_allclose(res.distribution, ref, atol=1e-7)

    def test_distribution_is_probability(self, name, solver, birth_death_chain):
        res = solver(birth_death_chain.P, tol=1e-10)
        assert res.distribution.min() >= -1e-12
        assert res.distribution.sum() == pytest.approx(1.0, abs=1e-9)

    def test_invariance(self, name, solver, birth_death_chain):
        res = solver(birth_death_chain.P, tol=1e-12)
        assert residual_norm(birth_death_chain.P, res.distribution) < 1e-8


class TestPower:
    def test_periodic_chain_needs_damping(self, ring_chain):
        skewed = np.array([0.7, 0.1, 0.1, 0.1])
        undamped = solve_power(ring_chain.P, tol=1e-12, max_iter=100, x0=skewed)
        assert not undamped.converged  # the point mass just rotates forever
        damped = solve_power(ring_chain.P, tol=1e-12, damping=0.5, x0=skewed)
        assert damped.converged
        np.testing.assert_allclose(damped.distribution, 0.25, atol=1e-8)

    def test_damping_validation(self, two_state_chain):
        with pytest.raises(ValueError):
            solve_power(two_state_chain.P, damping=0.0)

    def test_respects_x0(self, two_state_chain):
        res = solve_power(two_state_chain.P, x0=np.array([0.9, 0.1]), tol=1e-12)
        np.testing.assert_allclose(res.distribution, [0.6, 0.4], atol=1e-8)

    def test_history_monotone_tail(self, birth_death_chain):
        res = solve_power(birth_death_chain.P, tol=1e-12)
        h = res.residual_history
        assert h[-1] <= h[0]


class TestJacobi:
    def test_handles_zero_diagonal(self):
        # No self-loops at all: Jacobi == power iteration here, still works.
        P = np.array([[0.0, 1.0, 0.0], [0.5, 0.0, 0.5], [0.2, 0.8, 0.0]])
        res = solve_jacobi(MarkovChain(P).P, tol=1e-12)
        assert res.converged
        assert residual_norm(MarkovChain(P).P, res.distribution) < 1e-10


class TestGaussSeidel:
    def test_faster_than_jacobi_on_birth_death(self, birth_death_chain):
        j = solve_jacobi(birth_death_chain.P, tol=1e-10)
        gs = solve_gauss_seidel(birth_death_chain.P, tol=1e-10)
        assert gs.iterations <= j.iterations


class TestKrylov:
    def test_bicgstab_variant(self, birth_death_chain):
        res = solve_krylov(birth_death_chain.P, tol=1e-12, variant="bicgstab")
        ref = reference_stationary(birth_death_chain)
        np.testing.assert_allclose(res.distribution, ref, atol=1e-6)

    def test_no_preconditioner(self, birth_death_chain):
        res = solve_krylov(birth_death_chain.P, tol=1e-12, preconditioner=None)
        assert res.converged

    def test_bad_variant(self, two_state_chain):
        with pytest.raises(ValueError, match="variant"):
            solve_krylov(two_state_chain.P, variant="cg")

    def test_bad_preconditioner(self, two_state_chain):
        with pytest.raises(ValueError, match="preconditioner"):
            solve_krylov(two_state_chain.P, preconditioner="cholesky")


class TestDirect:
    def test_exact_on_ring(self, ring_chain):
        res = solve_direct(ring_chain.P)
        np.testing.assert_allclose(res.distribution, 0.25, atol=1e-12)
        assert res.iterations == 1


class TestFrontend:
    def test_auto_small_uses_direct(self, two_state_chain):
        res = stationary_distribution(two_state_chain)
        assert res.method == "direct"

    def test_named_methods(self, birth_death_chain):
        for method in ("power", "jacobi", "gauss-seidel", "krylov", "multigrid"):
            res = stationary_distribution(birth_death_chain, method=method, tol=1e-9)
            assert isinstance(res, StationaryResult)
            assert res.residual < 1e-6

    def test_accepts_raw_matrix(self):
        res = stationary_distribution(np.array([[0.8, 0.2], [0.3, 0.7]]))
        np.testing.assert_allclose(res.distribution, [0.6, 0.4], atol=1e-8)

    def test_unknown_method(self, two_state_chain):
        with pytest.raises(ValueError, match="unknown method"):
            stationary_distribution(two_state_chain, method="conjugate-gradient")

    def test_check_irreducible(self, absorbing_chain):
        with pytest.raises(ValueError, match="reducible"):
            stationary_distribution(absorbing_chain, check_irreducible=True)

    @given(random_chains(min_states=3, max_states=30))
    @settings(max_examples=25, deadline=None)
    def test_all_solvers_agree_on_random_chains(self, chain):
        ref = solve_direct(chain.P).distribution
        for method in ("power", "jacobi", "gauss-seidel"):
            res = stationary_distribution(chain, method=method, tol=1e-11)
            assert np.abs(res.distribution - ref).sum() < 1e-7

    @given(random_chains(min_states=2, max_states=25))
    @settings(max_examples=25, deadline=None)
    def test_stationary_is_invariant(self, chain):
        res = stationary_distribution(chain, method="direct")
        eta = res.distribution
        np.testing.assert_allclose(chain.step_distribution(eta), eta, atol=1e-8)


class TestResultHelpers:
    def test_prepare_initial_guess_default(self):
        x = prepare_initial_guess(4, None)
        np.testing.assert_allclose(x, 0.25)

    def test_prepare_initial_guess_normalizes(self):
        x = prepare_initial_guess(2, np.array([2.0, 2.0]))
        np.testing.assert_allclose(x, 0.5)

    def test_prepare_initial_guess_validation(self):
        with pytest.raises(ValueError):
            prepare_initial_guess(2, np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            prepare_initial_guess(2, np.zeros(2))
        with pytest.raises(ValueError):
            prepare_initial_guess(3, np.ones(2))

    def test_summary_and_rate(self, two_state_chain):
        res = solve_power(two_state_chain.P, tol=1e-12)
        assert "power" in res.summary()
        rate = res.convergence_rate()
        assert rate is None or 0.0 < rate < 1.0

    def test_n_states(self, two_state_chain):
        res = solve_direct(two_state_chain.P)
        assert res.n_states == 2
