"""Tests for transient analysis (S9a) and autocorrelation/PSD (S9b)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.markov import (
    MarkovChain,
    autocorrelation,
    autocovariance,
    distribution_at,
    distribution_trajectory,
    expected_trajectory,
    mixing_time,
    power_spectral_density,
    solve_direct,
    total_variation,
)

from .conftest import random_chains


class TestDistributionEvolution:
    def test_zero_steps_identity(self, two_state_chain):
        x = np.array([1.0, 0.0])
        np.testing.assert_allclose(distribution_at(two_state_chain, x, 0), x)

    def test_one_step(self, two_state_chain):
        x = distribution_at(two_state_chain, np.array([1.0, 0.0]), 1)
        np.testing.assert_allclose(x, [0.8, 0.2])

    def test_converges_to_stationary(self, two_state_chain):
        x = distribution_at(two_state_chain, np.array([1.0, 0.0]), 200)
        np.testing.assert_allclose(x, [0.6, 0.4], atol=1e-10)

    def test_trajectory_shape_and_consistency(self, two_state_chain):
        traj = distribution_trajectory(two_state_chain, np.array([1.0, 0.0]), 5)
        assert traj.shape == (6, 2)
        np.testing.assert_allclose(
            traj[3], distribution_at(two_state_chain, np.array([1.0, 0.0]), 3)
        )

    def test_negative_steps_rejected(self, two_state_chain):
        with pytest.raises(ValueError):
            distribution_at(two_state_chain, np.array([1.0, 0.0]), -1)
        with pytest.raises(ValueError):
            distribution_trajectory(two_state_chain, np.array([1.0, 0.0]), -1)

    def test_wrong_size_rejected(self, two_state_chain):
        with pytest.raises(ValueError):
            distribution_at(two_state_chain, np.ones(3) / 3, 1)

    @given(random_chains(min_states=2, max_states=20))
    @settings(max_examples=20, deadline=None)
    def test_mass_conserved(self, chain):
        x = chain.uniform_distribution()
        y = distribution_at(chain, x, 7)
        assert y.sum() == pytest.approx(1.0, abs=1e-10)


class TestExpectedTrajectory:
    def test_matches_manual(self, two_state_chain):
        f = np.array([0.0, 1.0])
        out = expected_trajectory(two_state_chain, np.array([1.0, 0.0]), f, 3)
        traj = distribution_trajectory(two_state_chain, np.array([1.0, 0.0]), 3)
        np.testing.assert_allclose(out, traj @ f)

    def test_size_check(self, two_state_chain):
        with pytest.raises(ValueError):
            expected_trajectory(two_state_chain, np.array([1.0, 0.0]), np.ones(3), 2)


class TestTotalVariationAndMixing:
    def test_tv_basics(self):
        assert total_variation(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0
        assert total_variation(np.array([0.5, 0.5]), np.array([0.5, 0.5])) == 0.0

    def test_tv_shape_check(self):
        with pytest.raises(ValueError):
            total_variation(np.ones(2) / 2, np.ones(3) / 3)

    def test_mixing_time_two_state(self, two_state_chain):
        eta = solve_direct(two_state_chain.P).distribution
        k = mixing_time(two_state_chain, eta, epsilon=0.01)
        assert 0 < k < 100
        x = distribution_at(two_state_chain, np.array([1.0, 0.0]), k)
        assert total_variation(x, eta) < 0.01

    def test_mixing_time_epsilon_validation(self, two_state_chain):
        eta = solve_direct(two_state_chain.P).distribution
        with pytest.raises(ValueError):
            mixing_time(two_state_chain, eta, epsilon=0.0)

    def test_mixing_time_cap(self, ring_chain):
        # Periodic chain never mixes; should return the cap.
        eta = np.full(4, 0.25)
        assert mixing_time(ring_chain, eta, epsilon=0.01, max_steps=50) == 50


class TestAutocovariance:
    def test_lag_zero_is_variance(self, two_state_chain):
        eta = solve_direct(two_state_chain.P).distribution
        f = np.array([0.0, 1.0])
        R = autocovariance(two_state_chain, eta, f, 0)
        var = eta[1] * (1 - eta[1])
        assert R[0] == pytest.approx(var)

    def test_two_state_closed_form(self, two_state_chain):
        """For a 2-state chain, rho(k) = lambda_2^k with
        lambda_2 = 1 - p - q (here 1 - 0.2 - 0.3 = 0.5)."""
        eta = solve_direct(two_state_chain.P).distribution
        f = np.array([0.0, 1.0])
        rho = autocorrelation(two_state_chain, eta, f, 5)
        np.testing.assert_allclose(rho, 0.5 ** np.arange(6), atol=1e-10)

    def test_constant_function_zero_covariance(self, birth_death_chain):
        eta = solve_direct(birth_death_chain.P).distribution
        f = np.full(birth_death_chain.n_states, 3.0)
        R = autocovariance(birth_death_chain, eta, f, 4)
        np.testing.assert_allclose(R, 0.0, atol=1e-12)

    def test_autocorrelation_of_constant_is_safe(self, birth_death_chain):
        eta = solve_direct(birth_death_chain.P).distribution
        f = np.zeros(birth_death_chain.n_states)
        rho = autocorrelation(birth_death_chain, eta, f, 3)
        assert rho[0] == 1.0
        np.testing.assert_allclose(rho[1:], 0.0)

    def test_negative_lag_rejected(self, two_state_chain):
        eta = solve_direct(two_state_chain.P).distribution
        with pytest.raises(ValueError):
            autocovariance(two_state_chain, eta, np.array([0.0, 1.0]), -1)

    def test_size_check(self, two_state_chain):
        with pytest.raises(ValueError):
            autocovariance(two_state_chain, np.ones(2) / 2, np.ones(3), 2)

    @given(random_chains(min_states=3, max_states=20))
    @settings(max_examples=15, deadline=None)
    def test_decays_for_ergodic(self, chain):
        eta = solve_direct(chain.P).distribution
        f = np.arange(chain.n_states, dtype=float)
        R = autocovariance(chain, eta, f, 60)
        assert abs(R[60]) <= abs(R[0]) + 1e-9


class TestPSD:
    def test_white_noise_flat_spectrum(self):
        # i.i.d. chain (all rows equal) -> f(X_k) white -> flat PSD.
        P = np.tile(np.array([0.3, 0.7]), (2, 1))
        chain = MarkovChain(P)
        eta = solve_direct(chain.P).distribution
        f = np.array([0.0, 1.0])
        S = power_spectral_density(chain, eta, f, max_lag=64, n_freqs=32)
        assert S.std() / S.mean() < 0.05

    def test_nonnegative(self, birth_death_chain):
        eta = solve_direct(birth_death_chain.P).distribution
        f = np.arange(birth_death_chain.n_states, dtype=float)
        S = power_spectral_density(birth_death_chain, eta, f, max_lag=128)
        assert np.all(S >= 0.0)

    def test_lowpass_shape_for_slow_chain(self, birth_death_chain):
        # A slowly-mixing chain concentrates power at low frequency.
        eta = solve_direct(birth_death_chain.P).distribution
        f = np.arange(birth_death_chain.n_states, dtype=float)
        S = power_spectral_density(birth_death_chain, eta, f, max_lag=256, n_freqs=64)
        assert S[0] > S[-1] * 10
