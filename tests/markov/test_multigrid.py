"""Tests for aggregation/disaggregation (S6) and multigrid (S7)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings

from repro.markov import (
    MarkovChain,
    MultigridOptions,
    MultigridSolver,
    Partition,
    disaggregate,
    pairing_hierarchy,
    pairwise_strength_partition,
    solve_aggregation_disaggregation,
    solve_direct,
    solve_multigrid,
)

from .conftest import random_chains


def big_birth_death(n=3000, up=0.3, down=0.4):
    rows, cols, vals = [], [], []
    for i in range(n):
        u = up if i < n - 1 else 0.0
        d = down if i > 0 else 0.0
        for j, p in ((i - 1, d), (i, 1.0 - u - d), (i + 1, u)):
            if p > 0:
                rows.append(i)
                cols.append(j)
                vals.append(p)
    return MarkovChain(sp.coo_matrix((vals, (rows, cols)), shape=(n, n)))


class TestDisaggregate:
    def test_block_masses_match_coarse(self):
        x = np.array([0.1, 0.1, 0.4, 0.4])
        part = Partition([0, 0, 1, 1])
        out = disaggregate(x, np.array([0.5, 0.5]), part)
        assert out[:2].sum() == pytest.approx(0.5)
        assert out[2:].sum() == pytest.approx(0.5)

    def test_preserves_intra_block_shape(self):
        x = np.array([0.2, 0.6, 0.1, 0.1])
        part = Partition([0, 0, 1, 1])
        out = disaggregate(x, np.array([0.4, 0.6]), part)
        assert out[1] / out[0] == pytest.approx(3.0)

    def test_zero_block_survives(self):
        x = np.array([0.0, 0.0, 0.5, 0.5])
        part = Partition([0, 0, 1, 1])
        out = disaggregate(x, np.array([0.0, 1.0]), part)
        assert out.sum() == pytest.approx(1.0)


class TestAggregationDisaggregation:
    def test_converges_on_birth_death(self, birth_death_chain):
        part = Partition.pairs(birth_death_chain.n_states)
        res = solve_aggregation_disaggregation(birth_death_chain.P, part, tol=1e-11)
        ref = solve_direct(birth_death_chain.P).distribution
        assert res.converged
        assert np.abs(res.distribution - ref).sum() < 1e-8

    def test_beats_plain_jacobi_in_iterations(self):
        from repro.markov import solve_jacobi

        chain = big_birth_death(400)
        part = Partition.pairs(chain.n_states)
        ad = solve_aggregation_disaggregation(chain.P, part, tol=1e-9, max_iter=2000)
        j = solve_jacobi(chain.P, tol=1e-9, max_iter=200_000)
        assert ad.converged
        assert ad.iterations < j.iterations

    def test_size_mismatch(self, two_state_chain):
        with pytest.raises(ValueError, match="partition size"):
            solve_aggregation_disaggregation(two_state_chain.P, Partition([0, 0, 1]))

    @given(random_chains(min_states=6, max_states=30))
    @settings(max_examples=15, deadline=None)
    def test_matches_direct_on_random_chains(self, chain):
        part = Partition.pairs(chain.n_states)
        res = solve_aggregation_disaggregation(chain.P, part, tol=1e-11, max_iter=500)
        ref = solve_direct(chain.P).distribution
        assert np.abs(res.distribution - ref).sum() < 1e-7


class TestCoarseningStrategies:
    def test_pairwise_strength_halves(self, birth_death_chain):
        part = pairwise_strength_partition(birth_death_chain.P)
        assert part.n_blocks <= (birth_death_chain.n_states + 1) // 2 + 1
        assert part.n_blocks >= birth_death_chain.n_states // 2

    def test_pairwise_strength_pairs_neighbours(self, birth_death_chain):
        part = pairwise_strength_partition(birth_death_chain.P)
        # In a birth-death chain the strongest coupling is to a grid
        # neighbour, so each non-singleton block spans adjacent indices.
        for b in range(part.n_blocks):
            members = part.members(b)
            if members.size == 2:
                assert abs(members[1] - members[0]) == 1

    def test_pairing_hierarchy_strategy(self):
        parts = [Partition.pairs(8), Partition.pairs(4)]
        strat = pairing_hierarchy(parts)
        P8 = sp.identity(8, format="csr")
        assert strat(0, P8).n_blocks == 4
        assert strat(2, P8) is None
        with pytest.raises(ValueError, match="level 1"):
            strat(1, P8)  # wrong size at level 1


class TestMultigridOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultigridOptions(tol=0.0)
        with pytest.raises(ValueError):
            MultigridOptions(max_cycles=0)
        with pytest.raises(ValueError):
            MultigridOptions(nu_pre=-1)
        with pytest.raises(ValueError):
            MultigridOptions(nu_pre=0, nu_post=0)
        with pytest.raises(ValueError):
            MultigridOptions(coarsest_size=0)
        with pytest.raises(ValueError):
            MultigridOptions(max_levels=0)


class TestMultigrid:
    def test_small_chain_direct_fallback(self, two_state_chain):
        res = solve_multigrid(two_state_chain)
        np.testing.assert_allclose(res.distribution, [0.6, 0.4], atol=1e-9)

    def test_large_birth_death(self):
        chain = big_birth_death(3000)
        res = solve_multigrid(chain, tol=1e-10, coarsest_size=64)
        ref = solve_direct(chain.P).distribution
        assert res.converged
        assert np.abs(res.distribution - ref).sum() < 1e-7

    def test_accepts_markov_chain_and_matrix(self, birth_death_chain):
        r1 = solve_multigrid(birth_death_chain, coarsest_size=8)
        r2 = solve_multigrid(birth_death_chain.P, coarsest_size=8)
        np.testing.assert_allclose(r1.distribution, r2.distribution, atol=1e-9)

    def test_uses_multiple_levels(self):
        chain = big_birth_death(2000)
        solver = MultigridSolver(options=MultigridOptions(coarsest_size=32, tol=1e-9))
        res = solver.solve(chain.P)
        assert res.converged
        assert solver.levels_used >= 4

    def test_cycle_count_flat_with_size(self):
        """The headline multigrid property: V-cycle count stays roughly
        constant as the problem grows (here: factor-of-8 growth)."""
        small = big_birth_death(500)
        large = big_birth_death(4000)
        rs = solve_multigrid(small, tol=1e-9, coarsest_size=32)
        rl = solve_multigrid(large, tol=1e-9, coarsest_size=32)
        assert rs.converged and rl.converged
        assert rl.iterations <= max(3 * rs.iterations, rs.iterations + 5)

    def test_structured_hierarchy(self):
        n = 512
        chain = big_birth_death(n)
        parts = []
        size = n
        while size > 32:
            parts.append(Partition.pairs(size))
            size = (size + 1) // 2
        res = solve_multigrid(
            chain, strategy=pairing_hierarchy(parts), tol=1e-10, coarsest_size=32
        )
        ref = solve_direct(chain.P).distribution
        assert res.converged
        assert np.abs(res.distribution - ref).sum() < 1e-7

    def test_strategy_decline_falls_back(self, birth_death_chain):
        res = solve_multigrid(
            birth_death_chain, strategy=lambda lvl, P: None, coarsest_size=8
        )
        # strategy refuses to coarsen; solver still produces the answer
        ref = solve_direct(birth_death_chain.P).distribution
        assert np.abs(res.distribution - ref).sum() < 1e-6

    @given(random_chains(min_states=5, max_states=40))
    @settings(max_examples=15, deadline=None)
    def test_matches_direct_on_random_chains(self, chain):
        res = solve_multigrid(chain, tol=1e-11, coarsest_size=4, max_cycles=300)
        ref = solve_direct(chain.P).distribution
        assert np.abs(res.distribution - ref).sum() < 1e-6

    def test_result_metadata(self, birth_death_chain):
        res = solve_multigrid(birth_death_chain, coarsest_size=8)
        assert res.method == "multigrid"
        assert res.solve_time >= 0.0
        assert len(res.residual_history) == res.iterations
