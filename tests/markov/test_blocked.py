"""Blocked (multi-vector) applies through the operator protocol."""

import numpy as np
import pytest

from repro.markov.linop import (
    AssembledOperator,
    as_operator,
    operator_matmat,
    operator_rmatmat,
)

pytestmark = [pytest.mark.operator]


def random_chain(n=30, seed=0):
    rng = np.random.default_rng(seed)
    P = rng.random((n, n))
    P /= P.sum(axis=1, keepdims=True)
    return AssembledOperator(__import__("scipy.sparse", fromlist=["x"]).csr_matrix(P))


class TestHelpers:
    def test_native_matmat_used(self):
        op = random_chain()
        X = np.random.default_rng(1).random((30, 3))
        assert np.allclose(operator_matmat(op, X), op.P.dot(X))
        assert np.allclose(operator_rmatmat(op, X), op.P.T.dot(X))

    def test_fallback_column_loop(self):
        class MatvecOnly:
            def __init__(self, op):
                self._op = op
                self.shape = op.shape

            def matvec(self, v):
                return self._op.matvec(v)

            def rmatvec(self, x):
                return self._op.rmatvec(x)

        inner = random_chain()
        op = MatvecOnly(inner)
        X = np.random.default_rng(2).random((30, 4))
        want = np.stack([inner.matvec(X[:, j]) for j in range(4)], axis=1)
        assert np.array_equal(operator_matmat(op, X), want)
        wantT = np.stack([inner.rmatvec(X[:, j]) for j in range(4)], axis=1)
        assert np.array_equal(operator_rmatmat(op, X), wantT)


class TestBlockedJacobi:
    def test_blocked_sweeps_match_columnwise(self):
        from repro.markov.solvers.jacobi import jacobi_split, jacobi_sweeps

        op = random_chain(seed=3)
        rng = np.random.default_rng(4)
        X = rng.random((30, 3))
        X /= X.sum(axis=0)
        split = jacobi_split(op)
        blocked = jacobi_sweeps(op, X.copy(), 4, split=split)
        for j in range(3):
            single = jacobi_sweeps(op, X[:, j].copy(), 4, split=split)
            assert np.allclose(blocked[:, j], single, atol=1e-14)

    def test_blocked_sweeps_matrix_free(self):
        from repro.cdr import CDRTransitionOperator, PhaseGrid
        from repro.markov.solvers.jacobi import jacobi_split, jacobi_sweeps
        from repro.noise import DiscreteDistribution, eye_opening_noise

        grid = PhaseGrid(32)
        op = CDRTransitionOperator(
            grid=grid,
            nw=eye_opening_noise(0.06, n_atoms=7),
            nr=DiscreteDistribution(
                [-grid.step, 0.0, grid.step], [0.2, 0.5, 0.3]
            ),
            counter_length=2,
            phase_step_units=2,
            max_run_length=2,
        )
        rng = np.random.default_rng(5)
        X = rng.random((op.n, 2))
        X /= X.sum(axis=0)
        split = jacobi_split(op)
        blocked = jacobi_sweeps(op, X.copy(), 3, split=split)
        for j in range(2):
            single = jacobi_sweeps(
                op, np.ascontiguousarray(X[:, j]), 3, split=split
            )
            assert np.allclose(blocked[:, j], single, atol=1e-14)


class TestKroneckerBlocked:
    def test_kron_matmat_matches_matvec(self):
        from repro.fsm.kronecker import kron_matmat, kron_matvec, synchronous_product

        rng = np.random.default_rng(6)
        P1 = rng.random((4, 4))
        P1 /= P1.sum(axis=1, keepdims=True)
        P2 = rng.random((5, 5))
        P2 /= P2.sum(axis=1, keepdims=True)
        desc = synchronous_product([P1, P2])
        mats = desc._terms[0][1]
        V = rng.random((20, 3))
        blocked = kron_matmat(mats, V)
        for j in range(3):
            assert np.allclose(blocked[:, j], kron_matvec(mats, V[:, j]))

    def test_descriptor_blocked_applies(self):
        from repro.fsm.kronecker import synchronous_product

        rng = np.random.default_rng(7)
        P1 = rng.random((3, 3))
        P1 /= P1.sum(axis=1, keepdims=True)
        P2 = rng.random((4, 4))
        P2 /= P2.sum(axis=1, keepdims=True)
        desc = synchronous_product([P1, P2])
        X = rng.random((12, 4))
        M = desc.to_sparse()
        assert np.allclose(desc.matmat(X), M @ X)
        assert np.allclose(desc.rmatmat(X), M.T @ X)

    def test_cdr_kronecker_backend_forwards(self):
        from repro.cdr import CDRTransitionOperator, PhaseGrid
        from repro.cdr.backends import KroneckerCDROperator
        from repro.noise import DiscreteDistribution, eye_opening_noise

        grid = PhaseGrid(16)
        structural = CDRTransitionOperator(
            grid=grid,
            nw=eye_opening_noise(0.06, n_atoms=5),
            nr=DiscreteDistribution(
                [-grid.step, 0.0, grid.step], [0.2, 0.5, 0.3]
            ),
            counter_length=2,
            phase_step_units=1,
            max_run_length=2,
        )
        op = KroneckerCDROperator(structural)
        X = np.random.default_rng(8).random((op.n, 2))
        for j in range(2):
            assert np.allclose(op.matmat(X)[:, j], op.matvec(X[:, j]))
            assert np.allclose(op.rmatmat(X)[:, j], op.rmatvec(X[:, j]))


class TestInstrumentedOperatorCountsBlocked:
    def test_matmat_counted(self):
        from repro.obs import profile

        op = random_chain(seed=9)
        with profile.profiled() as session:
            wrapped = profile.instrument_operator(op, role="test")
            X = np.random.default_rng(10).random((30, 2))
            wrapped.matmat(X)
            wrapped.rmatmat(X)
        snap = session.snapshot()
        ops = snap["operators"]["test"]["ops"]
        assert ops["matmat"]["calls"] == 1
        assert ops["rmatmat"]["calls"] == 1
        assert "kernel_tier" in snap
