"""Tests for censored chains / stochastic complementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import (
    MarkovChain,
    censored_chain,
    solve_direct,
    stochastic_complement,
)

from .conftest import random_chains


class TestStochasticComplement:
    def test_result_is_stochastic(self, birth_death_chain):
        S = stochastic_complement(birth_death_chain, list(range(10)))
        sums = np.asarray(S.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, 1.0, atol=1e-10)

    def test_full_set_is_identity_operation(self, birth_death_chain):
        S = stochastic_complement(
            birth_death_chain, list(range(birth_death_chain.n_states))
        )
        np.testing.assert_allclose(
            S.toarray(), birth_death_chain.to_dense(), atol=1e-12
        )

    def test_validation(self, two_state_chain):
        with pytest.raises(ValueError, match="non-empty"):
            stochastic_complement(two_state_chain, [])
        with pytest.raises(ValueError, match="out of range"):
            stochastic_complement(two_state_chain, [5])

    def test_two_state_complement_is_all_ones(self, two_state_chain):
        # Watching a single state of an irreducible chain: it always
        # returns, so the censored chain is the trivial 1-state chain.
        S = stochastic_complement(two_state_chain, [0])
        assert S.shape == (1, 1)
        assert S[0, 0] == pytest.approx(1.0)

    def test_escaping_set_raises(self):
        # State 0 transient into absorbing state 1; watching {0} never
        # sees a return.
        P = np.array([[0.5, 0.5], [0.0, 1.0]])
        with pytest.raises(ArithmeticError, match="permanent"):
            stochastic_complement(MarkovChain(P), [0])


class TestCensoredChain:
    def test_conditional_stationary_invariant(self, birth_death_chain):
        """The defining property: stationary(censored) == eta | keep."""
        keep = [3, 4, 5, 10, 20, 30]
        eta = solve_direct(birth_death_chain.P).distribution
        cc = censored_chain(birth_death_chain, keep)
        eta_c = solve_direct(cc.P).distribution
        expected = eta[np.array(keep)]
        expected = expected / expected.sum()
        np.testing.assert_allclose(eta_c, expected, atol=1e-10)

    @given(random_chains(min_states=4, max_states=25),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_conditional_stationary_on_random_chains(self, chain, seed):
        rng = np.random.default_rng(seed)
        k = rng.integers(2, chain.n_states)
        keep = np.sort(rng.choice(chain.n_states, size=k, replace=False))
        eta = solve_direct(chain.P).distribution
        cc = censored_chain(chain, keep)
        eta_c = solve_direct(cc.P).distribution
        expected = eta[keep] / eta[keep].sum()
        assert np.abs(eta_c - expected).sum() < 1e-7

    def test_labels_carried(self):
        chain = MarkovChain(
            np.array([[0.5, 0.5, 0.0], [0.2, 0.3, 0.5], [0.4, 0.1, 0.5]]),
            state_labels=["a", "b", "c"],
        )
        cc = censored_chain(chain, [0, 2])
        assert cc.state_labels == ["a", "c"]

    def test_cdr_locked_region_censoring(self):
        """Censoring the CDR chain on its locked region keeps the phase
        PDF shape there (integration test with the domain model)."""
        from repro.cdr import PhaseGrid, build_cdr_chain
        from repro.noise import DiscreteDistribution, eye_opening_noise

        grid = PhaseGrid(16)
        model = build_cdr_chain(
            grid=grid,
            nw=eye_opening_noise(0.1, n_atoms=5),
            nr=DiscreteDistribution(
                [-grid.step, 0.0, grid.step], [0.2, 0.5, 0.3]
            ),
            counter_length=2,
            phase_step_units=1,
        )
        eta = solve_direct(model.chain.P).distribution
        locked = np.flatnonzero(
            np.abs(model.phase_values_per_state()) < 0.25
        )
        cc = censored_chain(model.chain, locked)
        eta_c = solve_direct(cc.P).distribution
        expected = eta[locked] / eta[locked].sum()
        assert np.abs(eta_c - expected).sum() < 1e-8
