"""Tests for lumping (S5): partitions, lumpability, lumped chains."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.markov import (
    MarkovChain,
    Partition,
    aggregate_distribution,
    is_lumpable,
    lump,
    lumped_tpm,
    solve_direct,
)

from .conftest import random_chains


class TestPartition:
    def test_basic(self):
        p = Partition([0, 0, 1, 1, 2])
        assert p.n_states == 5
        assert p.n_blocks == 3
        np.testing.assert_array_equal(p.members(1), [2, 3])

    def test_rejects_gap(self):
        with pytest.raises(ValueError, match="must be used"):
            Partition([0, 0, 2])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Partition([-1, 0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Partition([])

    def test_members_range_check(self):
        with pytest.raises(ValueError):
            Partition([0, 1]).members(5)

    def test_aggregation_matrix(self):
        p = Partition([0, 1, 0])
        V = p.aggregation_matrix().toarray()
        np.testing.assert_array_equal(V, [[1, 0], [0, 1], [1, 0]])

    def test_from_blocks(self):
        p = Partition.from_blocks([[0, 2], [1]], n_states=3)
        np.testing.assert_array_equal(p.block_of, [0, 1, 0])

    def test_from_blocks_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            Partition.from_blocks([[0, 1], [1, 2]], n_states=3)

    def test_from_blocks_coverage(self):
        with pytest.raises(ValueError, match="cover"):
            Partition.from_blocks([[0]], n_states=2)

    def test_identity(self):
        p = Partition.identity(4)
        assert p.n_blocks == 4

    def test_pairs(self):
        p = Partition.pairs(5)
        np.testing.assert_array_equal(p.block_of, [0, 0, 1, 1, 2])

    def test_repr(self):
        assert "n_blocks=2" in repr(Partition([0, 1]))


class TestLumpability:
    def test_symmetric_chain_is_lumpable(self):
        # Perfectly symmetric two-block chain: lumpable by construction.
        P = np.array(
            [
                [0.1, 0.3, 0.3, 0.3],
                [0.3, 0.1, 0.3, 0.3],
                [0.25, 0.25, 0.25, 0.25],
                [0.25, 0.25, 0.25, 0.25],
            ]
        )
        chain = MarkovChain(P)
        part = Partition([0, 0, 1, 1])
        assert is_lumpable(chain, part)

    def test_generic_chain_not_lumpable(self):
        P = np.array(
            [
                [0.5, 0.25, 0.25],
                [0.1, 0.8, 0.1],
                [0.3, 0.3, 0.4],
            ]
        )
        chain = MarkovChain(P)
        assert not is_lumpable(chain, Partition([0, 0, 1]))

    def test_identity_partition_always_lumpable(self, birth_death_chain):
        part = Partition.identity(birth_death_chain.n_states)
        assert is_lumpable(birth_death_chain, part)

    def test_single_block_always_lumpable(self, birth_death_chain):
        part = Partition(np.zeros(birth_death_chain.n_states, dtype=int))
        assert is_lumpable(birth_death_chain, part)

    def test_size_mismatch(self, two_state_chain):
        with pytest.raises(ValueError, match="partition size"):
            is_lumpable(two_state_chain, Partition([0, 0, 1]))


class TestLumpedTPM:
    def test_lumped_is_stochastic(self, birth_death_chain):
        part = Partition.pairs(birth_death_chain.n_states)
        C = lumped_tpm(birth_death_chain.P, part)
        sums = np.asarray(C.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, 1.0, atol=1e-12)

    def test_stationary_weights_give_exact_lumped_chain(self, birth_death_chain):
        """With stationary weights, the aggregated stationary vector is the
        stationary vector of the lumped chain (the KMS exactness property)."""
        eta = solve_direct(birth_death_chain.P).distribution
        part = Partition.pairs(birth_death_chain.n_states)
        C = lumped_tpm(birth_death_chain.P, part, weights=eta)
        eta_c = solve_direct(C).distribution
        np.testing.assert_allclose(
            eta_c, aggregate_distribution(eta, part), atol=1e-10
        )

    def test_zero_weight_block_fallback(self, two_state_chain):
        C = lumped_tpm(two_state_chain.P, Partition([0, 1]), weights=np.array([1.0, 0.0]))
        sums = np.asarray(C.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, 1.0, atol=1e-12)

    def test_weight_validation(self, two_state_chain):
        with pytest.raises(ValueError, match="non-negative"):
            lumped_tpm(two_state_chain.P, Partition([0, 1]), weights=np.array([-1.0, 2.0]))
        with pytest.raises(ValueError, match="one entry"):
            lumped_tpm(two_state_chain.P, Partition([0, 1]), weights=np.ones(3))

    @given(random_chains(min_states=4, max_states=30))
    @settings(max_examples=25, deadline=None)
    def test_lumped_always_stochastic(self, chain):
        part = Partition.pairs(chain.n_states)
        C = lumped_tpm(chain.P, part)
        sums = np.asarray(C.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)
        assert C.nnz == 0 or C.data.min() >= -1e-12

    @given(random_chains(min_states=4, max_states=24))
    @settings(max_examples=25, deadline=None)
    def test_kms_exactness_property(self, chain):
        eta = solve_direct(chain.P).distribution
        part = Partition.pairs(chain.n_states)
        C = lumped_tpm(chain.P, part, weights=eta)
        agg = aggregate_distribution(eta, part)
        # agg is stationary for C
        np.testing.assert_allclose(C.T.dot(agg), agg, atol=1e-9)


class TestLump:
    def test_lump_requires_lumpable(self):
        P = np.array(
            [
                [0.5, 0.25, 0.25],
                [0.1, 0.8, 0.1],
                [0.3, 0.3, 0.4],
            ]
        )
        chain = MarkovChain(P)
        with pytest.raises(ValueError, match="not ordinarily lumpable"):
            lump(chain, Partition([0, 0, 1]), require_lumpable=True)

    def test_lump_labels(self):
        chain = MarkovChain(
            np.array([[0.5, 0.5], [0.5, 0.5]]), state_labels=["a", "b"]
        )
        lumped = lump(chain, Partition([0, 0]))
        assert lumped.state_labels == [("a", "b")]

    def test_lumped_chain_of_lumpable_preserves_stationary(self):
        P = np.array(
            [
                [0.1, 0.3, 0.3, 0.3],
                [0.3, 0.1, 0.3, 0.3],
                [0.25, 0.25, 0.25, 0.25],
                [0.25, 0.25, 0.25, 0.25],
            ]
        )
        chain = MarkovChain(P)
        part = Partition([0, 0, 1, 1])
        lumped = lump(chain, part, require_lumpable=True)
        eta = solve_direct(chain.P).distribution
        eta_l = solve_direct(lumped.P).distribution
        np.testing.assert_allclose(eta_l, aggregate_distribution(eta, part), atol=1e-10)


class TestAggregateDistribution:
    def test_basic(self):
        out = aggregate_distribution(np.array([0.1, 0.2, 0.7]), Partition([0, 0, 1]))
        np.testing.assert_allclose(out, [0.3, 0.7])

    def test_size_check(self):
        with pytest.raises(ValueError):
            aggregate_distribution(np.ones(2) / 2, Partition([0, 0, 1]))
