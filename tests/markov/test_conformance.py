"""Cross-solver conformance: every solver, every fixture chain, telemetry on.

Drives :mod:`repro.markov.conformance`.  Each fixture chain is solved once
per solver (cached per module) and then checked for pairwise stationary
agreement, monitor-event consistency, and residual-trend sanity.  The
scaled-up matrix cases are marked ``slow`` and excluded from the default
``pytest -x -q`` run.
"""

import numpy as np
import pytest

from repro.markov import conformance as cf
from repro.markov.classify import classify

CASES = {case.name: case for case in cf.default_cases()}
CASE_NAMES = sorted(CASES)
SOLVER_NAMES = sorted(cf.CONFORMANCE_SOLVERS)

_cache = {}


def case_runs(name):
    if name not in _cache:
        _cache[name] = cf.run_case(CASES[name])
    return _cache[name]


class TestFixtures:
    @pytest.mark.parametrize("name", CASE_NAMES)
    def test_fixture_is_valid_chain(self, name):
        chain = CASES[name].build()
        rows = np.asarray(chain.P.sum(axis=1)).ravel()
        np.testing.assert_allclose(rows, 1.0, atol=1e-12)
        # A single recurrent class guarantees a unique stationary vector
        # (the CDR fixture has transient states, so it is not irreducible).
        assert len(classify(chain).recurrent) == 1

    def test_periodic_fixture_is_periodic(self):
        from repro.markov.classify import period

        assert period(cf.periodic_fixture()) == 2

    def test_family_covers_required_structures(self):
        assert {"birth-death", "periodic", "nearly-uncoupled",
                "cdr-phase-error", "alexander-offset",
                "bangbang-frequency", "mesochronous"} <= set(CASES)

    def test_scenario_fixtures_differ_from_baseline_cdr(self):
        # The scenario-derived fixtures must exercise structure the plain
        # CDR fixture does not: an off-center stationary phase (offset),
        # an extra state dimension (frequency), zero-mean drift.
        import scipy.sparse as sp

        base = cf.cdr_phase_error_fixture()
        alexander = cf.alexander_offset_fixture()
        assert alexander.n_states != base.n_states or (
            sp.csr_matrix(abs(alexander.P - base.P)).sum() > 0
        )
        assert cf.bangbang_frequency_fixture().n_states == 3 * 32


@pytest.mark.parametrize("name", CASE_NAMES)
class TestAgreement:
    def test_all_solvers_agree(self, name):
        worst = cf.check_agreement(case_runs(name), atol=cf.DEFAULT_ATOL)
        assert worst <= cf.DEFAULT_ATOL

    def test_all_solvers_converged(self, name):
        for run in case_runs(name).values():
            assert run.result.converged, (name, run.solver)


@pytest.mark.parametrize("solver", SOLVER_NAMES)
@pytest.mark.parametrize("name", CASE_NAMES)
class TestMonitorConsistency:
    def test_events_match_result(self, name, solver):
        cf.check_monitor_consistency(case_runs(name)[solver])

    def test_residual_trend(self, name, solver):
        cf.check_residual_trend(case_runs(name)[solver], tol=cf.DEFAULT_TOL)


class TestRunConformance:
    def test_full_harness_passes(self):
        all_runs = cf.run_conformance(
            cases=[CASES["birth-death"], CASES["periodic"]]
        )
        assert set(all_runs) == {"birth-death", "periodic"}
        for runs in all_runs.values():
            assert set(runs) == set(cf.CONFORMANCE_SOLVERS)

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="unknown conformance solver"):
            cf.run_case(CASES["birth-death"], solvers=["no-such-solver"])

    def test_solver_subset(self):
        runs = cf.run_case(
            CASES["birth-death"], solvers=["direct", "multigrid"]
        )
        assert set(runs) == {"direct", "multigrid"}
        cf.check_agreement(runs)

    def test_agreement_check_catches_disagreement(self):
        runs = cf.run_case(CASES["birth-death"], solvers=["direct", "power"])
        runs["power"].result.distribution = (
            runs["power"].result.distribution[::-1].copy()
        )
        with pytest.raises(AssertionError, match="disagree"):
            cf.check_agreement(runs, atol=1e-10)


PATHOLOGICAL = {case.name: case for case in cf.pathological_cases()}

_pathology_cache = {}


def pathology_verdicts(name):
    if name not in _pathology_cache:
        _pathology_cache[name] = cf.run_pathology(
            PATHOLOGICAL[name], wall_clock_budget=30.0
        )
    return _pathology_cache[name]


class TestPathologicalChains:
    """Reducible, absorbing, and zero-row chains: every registered solver
    must either converge to a sane vector or raise a typed diagnosis --
    never hang, never return garbage silently."""

    @pytest.mark.parametrize("solver", SOLVER_NAMES)
    @pytest.mark.parametrize("name", sorted(PATHOLOGICAL))
    def test_every_solver_returns_or_diagnoses(self, name, solver):
        verdict = pathology_verdicts(name)[solver]
        assert verdict.outcome in ("converged", "diagnosed")
        if verdict.outcome == "converged":
            x = verdict.result.distribution
            assert np.all(np.isfinite(x))
            assert x.min() >= -1e-10
            assert x.sum() == pytest.approx(1.0, abs=1e-8)
        else:
            # The diagnosis must be typed and carry an explanation.
            assert verdict.diagnosis
            assert verdict.message

    @pytest.mark.parametrize("solver", SOLVER_NAMES)
    def test_zero_row_is_refused_before_iterating(self, solver):
        verdict = pathology_verdicts("zero-row")[solver]
        assert verdict.outcome == "diagnosed"
        assert verdict.diagnosis == "NumericalContamination"
        assert "zero row" in verdict.message

    def test_absorbing_mass_lands_on_absorbing_state(self):
        # The unique stationary vector is the delta on state 0; any solver
        # that claims convergence must have found it.
        for solver, verdict in pathology_verdicts("absorbing").items():
            if verdict.outcome != "converged":
                continue
            x = verdict.result.distribution
            assert x[0] == pytest.approx(1.0, abs=1e-8), solver

    def test_reducible_converged_vectors_are_stationary(self):
        # The stationary distribution is non-unique, so solvers need not
        # agree -- but whatever vector each returns must actually satisfy
        # pi P = pi.
        chain = PATHOLOGICAL["reducible"].build()
        for solver, verdict in pathology_verdicts("reducible").items():
            if verdict.outcome != "converged":
                continue
            x = verdict.result.distribution
            drift = float(np.abs(chain.P.T @ x - x).sum())
            assert drift < 1e-8, (solver, drift)

    def test_fixture_structure(self):
        from repro.markov.classify import classify

        # reducible: two recurrent classes; absorbing: one (the absorber).
        assert len(classify(PATHOLOGICAL["reducible"].build()).recurrent) == 2
        absorbing = classify(PATHOLOGICAL["absorbing"].build())
        assert len(absorbing.recurrent) == 1
        zero_rows = np.asarray(
            PATHOLOGICAL["zero-row"].build().P.sum(axis=1)
        ).ravel()
        assert np.any(zero_rows == 0.0)


@pytest.mark.slow
class TestScaledUpMatrix:
    """The large end of the conformance matrix (excluded from tier-1)."""

    def test_big_birth_death(self):
        case = cf.ConformanceCase(
            "birth-death-512",
            lambda: cf.birth_death_fixture(n=512),
            {"multigrid": {"coarsest_size": 16}},
        )
        runs = cf.run_case(case)
        cf.check_agreement(runs)
        for run in runs.values():
            cf.check_monitor_consistency(run)

    def test_stiff_bottleneck(self):
        # eps=2e-3 pushes the mixing gap toward zero: the stationary
        # methods need 10k-80k sweeps while multigrid (with extra
        # smoothing, as the stiff regime requires) needs a few hundred.
        case = cf.ConformanceCase(
            "bottleneck-stiff",
            cf.bottleneck_fixture,
            {
                "multigrid": {
                    "coarsest_size": 8, "nu_pre": 4, "nu_post": 4,
                    "max_cycles": 500,
                },
                "power": {"max_iter": 500_000},
            },
        )
        runs = cf.run_case(case)
        cf.check_agreement(runs)
        for run in runs.values():
            cf.check_monitor_consistency(run)

    def test_finer_cdr_chain(self):
        from repro.core.spec import CDRSpec

        def build():
            return CDRSpec(
                n_phase_points=128,
                n_clock_phases=16,
                counter_length=4,
                max_run_length=2,
                nw_std=0.05,
                nw_atoms=7,
            ).build_model().chain

        case = cf.ConformanceCase(
            "cdr-fine", build, {"multigrid": {"coarsest_size": 32}}
        )
        runs = cf.run_case(case, solvers=["direct", "gauss-seidel", "krylov",
                                          "multigrid", "arnoldi"])
        cf.check_agreement(runs)
        for run in runs.values():
            cf.check_monitor_consistency(run)

    def test_scaled_scenario_chains(self):
        # The scenario-derived fixtures at their catalog "fast" sizes
        # (the conformance defaults run them scaled down to 32 phase
        # points).  Fast solvers only: the point is the chains, not the
        # stationary methods' sweep counts.
        from repro.scenarios.registry import get_scenario

        solvers = ["direct", "krylov", "arnoldi"]
        for name in ("alexander-offset", "bangbang-freq",
                     "mesochronous-settle"):
            scenario = get_scenario(name)
            params = scenario.params_for("fast")
            chain = scenario.build(params, backend="assembled").chain
            case = cf.ConformanceCase(
                f"scenario-{name}", lambda c=chain: c, {}
            )
            runs = cf.run_case(case, solvers=solvers)
            cf.check_agreement(runs)
            for run in runs.values():
                cf.check_monitor_consistency(run)
