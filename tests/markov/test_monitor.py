"""Tests for the solver telemetry layer (repro.markov.monitor)."""

import json

import numpy as np
import pytest

from repro.markov import (
    MarkovChain,
    NullMonitor,
    RecordingMonitor,
    SolverMonitor,
    TeeMonitor,
    load_trace,
    solve_direct,
    solve_jacobi,
    solve_multigrid,
    solve_power,
    stationary_distribution,
)
from repro.markov.monitor import TRACE_SCHEMA, IterationEvent, VCycleLevelEvent


class TestProtocol:
    def test_null_and_recording_satisfy_protocol(self):
        assert isinstance(NullMonitor(), SolverMonitor)
        assert isinstance(RecordingMonitor(), SolverMonitor)
        assert isinstance(TeeMonitor(), SolverMonitor)

    def test_null_monitor_ignores_everything(self):
        m = NullMonitor()
        m.solve_started("power", 10, 1e-10)
        m.iteration_finished(1, 0.5, 0.001)
        m.vcycle_level(1, 0, 10, 28, 5, 0.0, 0.0)
        m.solve_finished(True, 1, 0.5, 0.001)  # no state, nothing to assert


class TestRecordingMonitor:
    def test_records_events_in_order(self):
        m = RecordingMonitor()
        m.solve_started("power", 4, 1e-10)
        m.iteration_finished(1, 0.5, 0.001)
        m.iteration_finished(2, 0.25, 0.002)
        m.solve_finished(False, 2, 0.25, 0.002)
        assert m.method == "power"
        assert m.n_states == 4
        assert m.n_iterations == 2
        assert m.residual_history == [0.5, 0.25]
        assert m.last_residual() == 0.25
        assert m.finished and m.converged is False

    def test_single_use(self):
        m = RecordingMonitor()
        m.solve_started("power", 4, 1e-10)
        with pytest.raises(RuntimeError, match="fresh recorder"):
            m.solve_started("jacobi", 4, 1e-10)

    def test_empty_recorder(self):
        m = RecordingMonitor()
        assert m.n_iterations == 0
        assert m.last_residual() is None
        assert not m.finished


class TestTeeMonitor:
    def test_fans_out_to_all(self):
        a, b = RecordingMonitor(), RecordingMonitor()
        tee = TeeMonitor(a, b)
        tee.solve_started("jacobi", 8, 1e-8)
        tee.iteration_finished(1, 0.1, 0.01)
        tee.vcycle_level(1, 0, 8, 20, 4, 0.001, 0.002)
        tee.solve_finished(True, 1, 0.1, 0.01)
        for m in (a, b):
            assert m.method == "jacobi"
            assert m.n_iterations == 1
            assert len(m.vcycle_events) == 1
            assert m.converged is True

    def test_none_monitors_dropped(self):
        a = RecordingMonitor()
        tee = TeeMonitor(a, None)
        tee.solve_started("x", 1, 1e-10)
        assert tee.monitors == (a,)


class TestSolverIntegration:
    def test_power_emits_per_iteration(self, birth_death_chain):
        rec = RecordingMonitor()
        res = solve_power(birth_death_chain.P, tol=1e-10, monitor=rec)
        assert rec.method == "power"
        assert rec.n_states == birth_death_chain.n_states
        assert len(rec.events) == res.iterations
        assert rec.events[-1].residual == res.residual
        assert rec.residual_history == res.residual_history
        assert rec.converged is True

    def test_direct_emits_single_event(self, two_state_chain):
        rec = RecordingMonitor()
        res = solve_direct(two_state_chain.P, monitor=rec)
        assert res.iterations == 1
        assert len(rec.events) == 1
        assert rec.events[0].residual == res.residual

    def test_multigrid_emits_level_events(self, birth_death_chain):
        rec = RecordingMonitor()
        res = solve_multigrid(
            birth_death_chain.P, tol=1e-10, coarsest_size=8, monitor=rec
        )
        assert res.converged
        assert len(rec.events) == res.iterations
        assert rec.vcycle_events, "expected per-level V-cycle telemetry"
        cycles = {e.cycle for e in rec.vcycle_events}
        assert cycles == set(range(1, res.iterations + 1))
        levels = sorted({e.level for e in rec.vcycle_events})
        assert levels[0] == 0 and len(levels) >= 2
        fine = [e for e in rec.vcycle_events if e.level == 0]
        for e in fine:
            assert e.n_states == birth_death_chain.n_states
            assert e.nnz == birth_death_chain.P.nnz
            assert 0 < e.n_blocks < e.n_states
            assert e.pre_smooth_time >= 0.0 and e.post_smooth_time >= 0.0
        # Coarsest level is solved directly: aggregate count 0 by convention.
        coarsest = [e for e in rec.vcycle_events if e.level == levels[-1]]
        assert all(e.n_blocks == 0 for e in coarsest)

    def test_frontend_threads_monitor(self, birth_death_chain):
        rec = RecordingMonitor()
        res = stationary_distribution(
            birth_death_chain, method="jacobi", tol=1e-10, monitor=rec
        )
        assert rec.method.startswith("jacobi")
        assert len(rec.events) == res.iterations

    def test_monitor_does_not_change_answer(self, birth_death_chain):
        plain = solve_jacobi(birth_death_chain.P, tol=1e-10)
        monitored = solve_jacobi(
            birth_death_chain.P, tol=1e-10, monitor=RecordingMonitor()
        )
        np.testing.assert_array_equal(plain.distribution, monitored.distribution)
        assert plain.iterations == monitored.iterations
        assert plain.residual == monitored.residual

    def test_eigen_small_chain_falls_back_with_monitor(self, two_state_chain):
        from repro.markov import solve_eigen

        rec = RecordingMonitor()
        res = solve_eigen(two_state_chain.P, tol=1e-10, monitor=rec)
        assert rec.method == "direct"  # n < 3 falls back to the direct solver
        assert len(rec.events) == res.iterations == 1


class TestTraceExport:
    def test_roundtrip(self, tmp_path, birth_death_chain):
        rec = RecordingMonitor()
        res = solve_multigrid(
            birth_death_chain.P, tol=1e-10, coarsest_size=8, monitor=rec
        )
        path = tmp_path / "trace.json"
        rec.write_trace(str(path))
        trace = load_trace(str(path))
        assert trace["schema"] == TRACE_SCHEMA
        assert trace["method"] == res.method
        assert trace["iterations"] == res.iterations
        assert trace["converged"] == res.converged
        assert trace["residual"] == res.residual
        assert len(trace["events"]) == res.iterations
        assert trace["events"][-1]["residual"] == res.residual
        assert len(trace["vcycle_events"]) == len(rec.vcycle_events)
        first = trace["vcycle_events"][0]
        assert set(first) == {
            "cycle", "level", "n_states", "nnz", "n_blocks",
            "pre_smooth_time", "post_smooth_time",
        }

    def test_write_to_file_object(self, two_state_chain):
        import io

        rec = RecordingMonitor()
        solve_direct(two_state_chain.P, monitor=rec)
        buf = io.StringIO()
        rec.write_trace(buf)
        trace = json.loads(buf.getvalue())
        assert trace["method"] == "direct"

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "someone-else/9"}))
        with pytest.raises(ValueError, match="schema"):
            load_trace(str(path))

    def test_event_dataclasses_are_frozen(self):
        e = IterationEvent(1, 0.5, 0.01)
        with pytest.raises(Exception):
            e.residual = 0.1
        v = VCycleLevelEvent(1, 0, 10, 30, 5, 0.0, 0.0)
        with pytest.raises(Exception):
            v.level = 1
