"""Tests for repro.markov.chain."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings

from repro.markov import MarkovChain, random_chain, validate_stochastic_matrix

from .conftest import random_chains


class TestValidation:
    def test_accepts_dense(self):
        P = validate_stochastic_matrix(np.array([[0.5, 0.5], [1.0, 0.0]]))
        assert sp.issparse(P)
        np.testing.assert_allclose(np.asarray(P.sum(axis=1)).ravel(), 1.0)

    def test_accepts_sparse(self):
        P = sp.csr_matrix(np.array([[0.5, 0.5], [1.0, 0.0]]))
        out = validate_stochastic_matrix(P)
        assert out.shape == (2, 2)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            validate_stochastic_matrix(np.ones((2, 3)) / 3)

    def test_rejects_bad_row_sum(self):
        with pytest.raises(ValueError, match="sums to"):
            validate_stochastic_matrix(np.array([[0.5, 0.4], [0.5, 0.5]]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_stochastic_matrix(np.array([[1.2, -0.2], [0.5, 0.5]]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one state"):
            validate_stochastic_matrix(np.zeros((0, 0)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="two-dimensional"):
            validate_stochastic_matrix(np.array([1.0]))

    def test_rescales_near_one_rows(self):
        P = validate_stochastic_matrix(np.array([[0.5 + 1e-10, 0.5], [0.3, 0.7]]))
        sums = np.asarray(P.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, 1.0, atol=1e-15)


class TestMarkovChain:
    def test_basic_properties(self, two_state_chain):
        assert two_state_chain.n_states == 2
        assert two_state_chain.nnz == 4
        assert two_state_chain.is_stochastic()
        assert "n_states=2" in repr(two_state_chain)

    def test_step_distribution(self, two_state_chain):
        x = np.array([1.0, 0.0])
        y = two_state_chain.step_distribution(x)
        np.testing.assert_allclose(y, [0.8, 0.2])

    def test_step_distribution_shape_check(self, two_state_chain):
        with pytest.raises(ValueError, match="shape"):
            two_state_chain.step_distribution(np.ones(3))

    def test_transition_prob(self, two_state_chain):
        assert two_state_chain.transition_prob(0, 1) == pytest.approx(0.2)

    def test_point_and_uniform(self, two_state_chain):
        np.testing.assert_allclose(two_state_chain.point_distribution(1), [0.0, 1.0])
        np.testing.assert_allclose(two_state_chain.uniform_distribution(), [0.5, 0.5])

    def test_labels(self):
        c = MarkovChain(np.eye(2), state_labels=["locked", "slipped"])
        assert c.label_of(0) == "locked"
        assert c.index_of("slipped") == 1
        with pytest.raises(KeyError):
            c.index_of("nope")

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            MarkovChain(np.eye(2), state_labels=["only-one"])

    def test_index_of_unlabeled(self, two_state_chain):
        assert two_state_chain.index_of(1) == 1
        with pytest.raises(KeyError):
            two_state_chain.index_of(7)

    def test_label_of_unlabeled(self, two_state_chain):
        assert two_state_chain.label_of(1) == 1

    def test_submatrix(self, birth_death_chain):
        Q = birth_death_chain.submatrix([0, 1, 2])
        assert Q.shape == (3, 3)
        # interior rows lose the mass that left the subset
        assert Q.sum() < 3.0

    def test_states_where_with_labels(self):
        c = MarkovChain(np.eye(3), state_labels=[("a", 0), ("b", 1), ("a", 2)])
        idx = c.states_where(lambda lab: lab[0] == "a")
        np.testing.assert_array_equal(idx, [0, 2])

    def test_states_where_unlabeled(self, two_state_chain):
        idx = two_state_chain.states_where(lambda i: i == 1)
        np.testing.assert_array_equal(idx, [1])

    def test_expected_value(self, two_state_chain):
        v = two_state_chain.expected_value(np.array([0.5, 0.5]), np.array([0.0, 2.0]))
        assert v == pytest.approx(1.0)

    def test_expected_value_shape_check(self, two_state_chain):
        with pytest.raises(ValueError):
            two_state_chain.expected_value(np.ones(2) / 2, np.ones(3))

    def test_to_dense_roundtrip(self, two_state_chain):
        np.testing.assert_allclose(
            two_state_chain.to_dense(), [[0.8, 0.2], [0.3, 0.7]]
        )

    def test_simulate_visits_all_states(self, two_state_chain, rng):
        path = two_state_chain.simulate(500, rng)
        assert path.shape == (501,)
        assert set(np.unique(path)) == {0, 1}

    def test_simulate_frequencies_match_stationary(self, two_state_chain, rng):
        # stationary of [[.8,.2],[.3,.7]] is (0.6, 0.4)
        path = two_state_chain.simulate(40_000, rng)
        frac1 = (path == 1).mean()
        assert abs(frac1 - 0.4) < 0.02

    def test_simulate_bad_initial(self, two_state_chain, rng):
        with pytest.raises(ValueError):
            two_state_chain.simulate(5, rng, initial_state=9)


class TestRandomChain:
    def test_is_stochastic(self, rng):
        c = random_chain(37, rng)
        assert c.is_stochastic()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_chain(0, rng)
        with pytest.raises(ValueError):
            random_chain(5, rng, density=0.0)

    @given(random_chains())
    @settings(max_examples=25, deadline=None)
    def test_random_chains_always_stochastic(self, chain):
        assert chain.is_stochastic()
        sums = chain.row_sums()
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)

    @given(random_chains())
    @settings(max_examples=25, deadline=None)
    def test_step_preserves_mass(self, chain):
        x = chain.uniform_distribution()
        y = chain.step_distribution(x)
        assert y.sum() == pytest.approx(1.0, abs=1e-12)
        assert np.all(y >= -1e-15)
