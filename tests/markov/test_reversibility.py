"""Tests for reversibility diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.markov import (
    MarkovChain,
    detailed_balance_violation,
    is_reversible,
    reversibilization,
    solve_direct,
)

from .conftest import random_chains


class TestDetailedBalance:
    def test_birth_death_is_reversible(self, birth_death_chain):
        # All birth-death chains satisfy detailed balance.
        assert is_reversible(birth_death_chain)
        assert detailed_balance_violation(birth_death_chain) < 1e-12

    def test_two_state_always_reversible(self, two_state_chain):
        assert is_reversible(two_state_chain)

    def test_directed_cycle_not_reversible(self):
        # 3-cycle with a bias: flux circulates, detailed balance fails.
        P = np.array(
            [
                [0.1, 0.8, 0.1],
                [0.1, 0.1, 0.8],
                [0.8, 0.1, 0.1],
            ]
        )
        chain = MarkovChain(P)
        assert not is_reversible(chain)
        assert detailed_balance_violation(chain) > 0.01

    def test_cdr_chain_is_not_reversible(self):
        """The drift makes the CDR phase error a non-equilibrium process."""
        from repro.cdr import PhaseGrid, build_cdr_chain
        from repro.noise import DiscreteDistribution, eye_opening_noise

        grid = PhaseGrid(16)
        model = build_cdr_chain(
            grid=grid,
            nw=eye_opening_noise(0.1, n_atoms=5),
            nr=DiscreteDistribution(
                [-grid.step, 0.0, grid.step], [0.15, 0.5, 0.35]
            ),
            counter_length=2,
            phase_step_units=1,
        )
        # Transient (zero-mass) product states would break the
        # reversibilization; check violation on the raw chain only.
        assert not is_reversible(model.chain)


class TestReversibilization:
    def test_preserves_stationary(self):
        P = np.array(
            [
                [0.1, 0.8, 0.1],
                [0.1, 0.1, 0.8],
                [0.8, 0.1, 0.1],
            ]
        )
        chain = MarkovChain(P)
        eta = solve_direct(chain.P).distribution
        R = reversibilization(chain, eta)
        eta_r = solve_direct(R.P).distribution
        np.testing.assert_allclose(eta_r, eta, atol=1e-10)

    def test_result_is_reversible(self):
        P = np.array(
            [
                [0.1, 0.8, 0.1],
                [0.1, 0.1, 0.8],
                [0.8, 0.1, 0.1],
            ]
        )
        R = reversibilization(MarkovChain(P))
        assert is_reversible(R)

    def test_reversible_chain_is_fixed_point(self, birth_death_chain):
        R = reversibilization(birth_death_chain)
        np.testing.assert_allclose(
            R.to_dense(), birth_death_chain.to_dense(), atol=1e-10
        )

    def test_zero_mass_rejected(self):
        P = np.array([[1.0, 0.0], [0.5, 0.5]])  # state 1 transient
        with pytest.raises(ValueError, match="positive"):
            reversibilization(MarkovChain(P), np.array([1.0, 0.0]))

    @given(random_chains(min_states=3, max_states=20))
    @settings(max_examples=15, deadline=None)
    def test_reversibilization_invariants_on_random_chains(self, chain):
        eta = solve_direct(chain.P).distribution
        if np.any(eta <= 1e-12):
            return
        R = reversibilization(chain, eta)
        assert R.is_stochastic()
        assert is_reversible(R, eta, atol=1e-8)
        eta_r = solve_direct(R.P).distribution
        assert np.abs(eta_r - eta).sum() < 1e-7
