"""Invariant tests for the shared solver-result helpers.

Property-style checks for ``prepare_initial_guess`` and ``residual_norm``
plus the documented ``convergence_rate`` contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.solvers.result import (
    StationaryResult,
    prepare_initial_guess,
    residual_norm,
)

from .conftest import random_chains


class TestPrepareInitialGuess:
    @given(n=st.integers(min_value=1, max_value=200))
    def test_default_is_uniform(self, n):
        x = prepare_initial_guess(n, None)
        assert x.shape == (n,)
        np.testing.assert_allclose(x, 1.0 / n)

    @given(
        n=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=30)
    def test_normalizes_any_positive_vector(self, n, seed):
        rng = np.random.default_rng(seed)
        raw = rng.uniform(0.1, 10.0, n)
        x = prepare_initial_guess(n, raw)
        assert x.shape == (n,)
        assert np.all(x >= 0)
        assert x.sum() == pytest.approx(1.0, abs=1e-12)
        # Direction preserved: normalization must not reorder mass.
        np.testing.assert_allclose(x, raw / raw.sum())

    def test_does_not_mutate_input(self):
        raw = np.array([2.0, 2.0])
        prepare_initial_guess(2, raw)
        np.testing.assert_array_equal(raw, [2.0, 2.0])

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            prepare_initial_guess(3, np.ones(4))
        with pytest.raises(ValueError, match="shape"):
            prepare_initial_guess(3, np.ones((3, 1)))

    def test_rejects_negative_mass(self):
        with pytest.raises(ValueError, match="non-negative"):
            prepare_initial_guess(2, np.array([1.0, -0.5]))

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError, match="positive mass"):
            prepare_initial_guess(2, np.zeros(2))


class TestResidualNorm:
    @given(chain=random_chains(min_states=2, max_states=30))
    @settings(max_examples=30, deadline=None)
    def test_non_negative_for_any_distribution(self, chain):
        rng = np.random.default_rng(chain.n_states)
        x = rng.uniform(0.0, 1.0, chain.n_states)
        x /= x.sum()
        assert residual_norm(chain.P, x) >= 0.0

    @given(chain=random_chains(min_states=2, max_states=30))
    @settings(max_examples=30, deadline=None)
    def test_zero_iff_stationary(self, chain):
        from repro.markov import solve_direct

        eta = solve_direct(chain.P).distribution
        assert residual_norm(chain.P, eta) < 1e-10

    def test_bounded_by_two_for_distributions(self):
        # ||xP - x||_1 <= ||xP||_1 + ||x||_1 = 2 for any distribution x.
        P = np.array([[0.0, 1.0], [1.0, 0.0]])
        from repro.markov import MarkovChain

        x = np.array([1.0, 0.0])
        assert residual_norm(MarkovChain(P).P, x) <= 2.0 + 1e-12


class TestConvergenceRateContract:
    def _result(self, history):
        return StationaryResult(
            distribution=np.array([0.5, 0.5]),
            iterations=len(history),
            residual=history[-1] if history else 0.0,
            converged=True,
            method="test",
            residual_history=list(history),
        )

    def test_empty_history_returns_none(self):
        assert self._result([]).convergence_rate() is None

    def test_single_positive_entry_returns_none(self):
        # Documented contract: one residual carries no rate information.
        assert self._result([1e-12]).convergence_rate() is None

    def test_all_zero_history_returns_none(self):
        assert self._result([0.0, 0.0, 0.0]).convergence_rate() is None

    def test_zero_entries_filtered_before_ratio(self):
        # Leading/trailing exact zeros must not poison the geometric mean.
        rate = self._result([0.0, 1.0, 0.5, 0.25, 0.0]).convergence_rate()
        assert rate == pytest.approx(0.5)

    def test_geometric_decay_recovered(self):
        history = [0.5**k for k in range(1, 11)]
        rate = self._result(history).convergence_rate()
        assert rate == pytest.approx(0.5)

    def test_rate_from_real_solver(self):
        from .test_conformance import CASES
        from repro.markov import solve_jacobi

        chain = CASES["birth-death"].build()
        res = solve_jacobi(chain.P, tol=1e-10)
        rate = res.convergence_rate()
        assert rate is not None
        assert 0.0 < rate < 1.0
