"""Tests for first-passage time variance (hitting_time_moments)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import (
    MarkovChain,
    hitting_time_moments,
    mean_first_passage_times,
)

from .conftest import random_chains


class TestHittingTimeMoments:
    def test_geometric_closed_form(self):
        """From state 0 of [[1-p, p], [q, 1-q]], hitting {1} is geometric
        with success probability p: mean 1/p, variance (1-p)/p^2."""
        p = 0.2
        P = np.array([[1 - p, p], [0.3, 0.7]])
        mean, var = hitting_time_moments(MarkovChain(P), [1])
        assert mean[0] == pytest.approx(1.0 / p)
        assert var[0] == pytest.approx((1 - p) / p**2)
        assert mean[1] == 0.0 and var[1] == 0.0

    def test_mean_matches_mean_first_passage_times(self, birth_death_chain):
        mean, _ = hitting_time_moments(birth_death_chain, [0, 1])
        t = mean_first_passage_times(birth_death_chain, [0, 1])
        np.testing.assert_allclose(mean, t, rtol=1e-9)

    def test_deterministic_path_zero_variance(self):
        """A deterministic conveyor 0 -> 1 -> 2 hits {2} in exactly 2
        steps from 0: variance must be zero."""
        P = np.array(
            [
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
                [0.0, 0.0, 1.0],
            ]
        )
        mean, var = hitting_time_moments(MarkovChain(P), [2])
        assert mean[0] == pytest.approx(2.0)
        np.testing.assert_allclose(var[:2], 0.0, atol=1e-9)

    def test_unreachable_is_inf(self):
        P = np.array([[1.0, 0.0], [0.5, 0.5]])
        mean, var = hitting_time_moments(MarkovChain(P), [1])
        assert mean[0] == np.inf
        assert var[0] == np.inf

    def test_all_targets(self, two_state_chain):
        mean, var = hitting_time_moments(two_state_chain, [0, 1])
        np.testing.assert_allclose(mean, 0.0)
        np.testing.assert_allclose(var, 0.0)

    def test_validation(self, two_state_chain):
        with pytest.raises(ValueError):
            hitting_time_moments(two_state_chain, [])

    @given(random_chains(min_states=3, max_states=20),
           st.integers(min_value=0, max_value=19))
    @settings(max_examples=15, deadline=None)
    def test_variance_nonnegative(self, chain, tseed):
        target = tseed % chain.n_states
        mean, var = hitting_time_moments(chain, [target])
        finite = np.isfinite(var)
        assert np.all(var[finite] >= -1e-9)

    @given(random_chains(min_states=3, max_states=12),
           st.integers(min_value=0, max_value=11))
    @settings(max_examples=10, deadline=None)
    def test_monte_carlo_agreement(self, chain, tseed):
        target = tseed % chain.n_states
        start = (target + 1) % chain.n_states
        mean, var = hitting_time_moments(chain, [target])
        if not np.isfinite(mean[start]) or mean[start] > 200:
            return
        rng = np.random.default_rng(tseed)
        horizon = 20_000
        n_samples = 1500
        # All walkers advance in lockstep through the dense cumulative
        # transition rows -- the chains here are <= 12 states, so this is
        # both exact and orders of magnitude faster than per-path
        # simulate() calls.
        cum = np.cumsum(chain.P.toarray(), axis=1)
        states = np.full(n_samples, start)
        hit_at = np.zeros(n_samples, dtype=np.int64)
        alive = np.arange(n_samples)
        for k in range(1, horizon + 1):
            u = rng.random(alive.size)
            states[alive] = (u[:, None] < cum[states[alive]]).argmax(axis=1)
            hit = states[alive] == target
            hit_at[alive[hit]] = k
            alive = alive[~hit]
            if alive.size == 0:
                break
        # With mean <= 200 and a 20k-step horizon, essentially every
        # trajectory hits; a censored tail would bias the moments down.
        samples = hit_at[hit_at > 0].astype(float)
        assert samples.size >= 0.99 * n_samples
        # Statistically calibrated bound: the sample mean of n i.i.d.
        # hitting times has standard error sqrt(var/n); allow 5 sigma
        # (plus slack for near-deterministic cases where var ~ 0).
        se_mean = np.sqrt(max(var[start], 0.0) / len(samples))
        assert abs(samples.mean() - mean[start]) <= 5.0 * se_mean + 0.05
        # The sample variance is far noisier (4th-moment fluctuations,
        # heavy geometric tails), so only check order-of-magnitude
        # agreement, and only when the variance is comfortably nonzero --
        # a barely-positive variance cannot be resolved with n samples.
        if var[start] > 2.0:
            assert np.var(samples) == pytest.approx(var[start], rel=0.6)
