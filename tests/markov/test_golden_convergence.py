"""Golden convergence-regression tests.

Expected iteration counts (with tolerance bands) for each solver on fixed,
fully deterministic chains.  A solver change that slows convergence -- or a
smoothing/coarsening regression in the multigrid -- fails here in tier-1
instead of only surfacing in the benchmark suite.

The golden numbers were measured at the telemetry-refactor baseline
(scipy 1.17 / numpy 2.x); the bands are wide enough (+/-35% for the
iterative methods) to absorb BLAS/rounding drift across platforms while
still catching algorithmic regressions, which move counts by integer
factors.
"""

import pytest

from repro.markov import conformance as cf

TOL = 1e-10

# solver -> (expected iterations, relative band); measured on the
# birth-death(64) fixture (up=0.3, down=0.4) at tol=1e-10.
GOLDEN_BIRTH_DEATH = {
    "power": (2691, 0.35),
    "jacobi": (2653, 0.35),
    "gauss-seidel": (950, 0.35),
    "sor": (638, 0.35),
    "multigrid": (83, 0.50),
}

# Same contract on the nearly-uncoupled fixture (block_size=6, eps=0.02,
# seed=42) -- the stiff case where multigrid's advantage is largest.
GOLDEN_NEARLY_UNCOUPLED = {
    "power": (2044, 0.35),
    "jacobi": (2523, 0.35),
    "gauss-seidel": (939, 0.35),
    "sor": (645, 0.35),
    "multigrid": (7, 1.0),
}


def _solve(chain, solver):
    kwargs = {"coarsest_size": 8} if solver == "multigrid" else {}
    return cf.CONFORMANCE_SOLVERS[solver](chain.P, tol=TOL, **kwargs)


@pytest.mark.parametrize("solver", sorted(GOLDEN_BIRTH_DEATH))
def test_birth_death_iteration_count(solver):
    expected, band = GOLDEN_BIRTH_DEATH[solver]
    res = _solve(cf.birth_death_fixture(), solver)
    assert res.converged
    lo, hi = expected * (1 - band), expected * (1 + band)
    assert lo <= res.iterations <= hi, (
        f"{solver}: {res.iterations} iterations, golden {expected} "
        f"(allowed [{lo:.0f}, {hi:.0f}])"
    )


@pytest.mark.parametrize("solver", sorted(GOLDEN_NEARLY_UNCOUPLED))
def test_nearly_uncoupled_iteration_count(solver):
    expected, band = GOLDEN_NEARLY_UNCOUPLED[solver]
    res = _solve(cf.nearly_uncoupled_fixture(), solver)
    assert res.converged
    lo, hi = expected * (1 - band), max(expected * (1 + band), expected + 2)
    assert lo <= res.iterations <= hi, (
        f"{solver}: {res.iterations} iterations, golden {expected} "
        f"(allowed [{lo:.0f}, {hi:.0f}])"
    )


def test_direct_and_krylov_stay_direct():
    """Direct is one shot; preconditioned GMRES must stay within a handful
    of restart snapshots on an easy banded chain."""
    chain = cf.birth_death_fixture()
    assert _solve(chain, "direct").iterations == 1
    assert _solve(chain, "arnoldi").iterations == 1
    assert _solve(chain, "krylov").iterations <= 5


def test_multigrid_beats_stationary_methods():
    """The headline ordering the paper's solver table rests on."""
    chain = cf.nearly_uncoupled_fixture()
    mg = _solve(chain, "multigrid")
    for slow_solver in ("power", "jacobi", "gauss-seidel"):
        assert _solve(chain, slow_solver).iterations > 10 * mg.iterations
