"""Tests for the fundamental-matrix analyses (deviation matrix, Kemeny
constant, CLT variance) and their classical invariants."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.markov import (
    MarkovChain,
    autocovariance,
    deviation_matrix,
    fundamental_matrix_kemeny_snell,
    kemeny_constant,
    mean_first_passage_times,
    pairwise_mean_first_passage,
    solve_direct,
    time_average_variance,
)

from .conftest import random_chains


class TestFundamentalMatrix:
    def test_Z_rows_sum_to_one(self, two_state_chain):
        Z = fundamental_matrix_kemeny_snell(two_state_chain)
        np.testing.assert_allclose(Z.sum(axis=1), 1.0, atol=1e-12)

    def test_deviation_rows_sum_to_zero(self, two_state_chain):
        D = deviation_matrix(two_state_chain)
        np.testing.assert_allclose(D.sum(axis=1), 0.0, atol=1e-12)

    def test_deviation_eta_nullvector(self, birth_death_chain):
        # eta D = 0 (left null vector)
        eta = solve_direct(birth_death_chain.P).distribution
        D = deviation_matrix(birth_death_chain, eta)
        np.testing.assert_allclose(eta @ D, 0.0, atol=1e-10)

    def test_group_inverse_property(self, birth_death_chain):
        # (I - P) D (I - P) == (I - P)
        P = birth_death_chain.to_dense()
        A = np.eye(P.shape[0]) - P
        D = deviation_matrix(birth_death_chain)
        np.testing.assert_allclose(A @ D @ A, A, atol=1e-9)

    def test_dense_limit(self):
        import scipy.sparse as sp

        big = MarkovChain(sp.identity(6000, format="csr"), validate=False)
        with pytest.raises(ValueError, match="limit"):
            deviation_matrix(big)

    def test_accepts_dense_array(self):
        P = np.array([[0.8, 0.2], [0.3, 0.7]])
        Z = fundamental_matrix_kemeny_snell(P)
        assert Z.shape == (2, 2)


class TestKemenyConstant:
    def test_two_state_closed_form(self, two_state_chain):
        # For P = [[1-p, p], [q, 1-q]] with the m_ii = 0 convention:
        # K = eta_1 m_01 = (p/(p+q)) (1/p) = 1/(p+q).
        K = kemeny_constant(two_state_chain)
        assert K == pytest.approx(1.0 / 0.5)

    @given(random_chains(min_states=3, max_states=15))
    @settings(max_examples=15, deadline=None)
    def test_kemeny_is_start_independent(self, chain):
        """The defining magic: sum_j eta_j m_ij is the same for every i."""
        eta = solve_direct(chain.P).distribution
        K = kemeny_constant(chain, eta)
        n = chain.n_states
        for i in range(min(n, 4)):
            total = 0.0
            for j in range(n):
                if j == i:
                    continue
                t = mean_first_passage_times(chain, [j])
                total += eta[j] * t[i]
            # K counts the recurrence-time convention: K = sum + eta_i * 0
            # with the trace formula equal to sum_j!=i eta_j m_ij + 1... use
            # the standard identity K = 1 + sum_{j != i} eta_j m_ij ... both
            # conventions differ by 1; compare against trace convention:
            assert total == pytest.approx(K, rel=1e-6, abs=1e-8)


class TestPairwiseMFPT:
    def test_diagonal_is_kac(self, two_state_chain):
        eta = solve_direct(two_state_chain.P).distribution
        M = pairwise_mean_first_passage(two_state_chain, eta)
        np.testing.assert_allclose(np.diag(M), 1.0 / eta, rtol=1e-10)

    def test_offdiagonal_matches_passage_solver(self, birth_death_chain):
        M = pairwise_mean_first_passage(birth_death_chain)
        t = mean_first_passage_times(birth_death_chain, [7])
        np.testing.assert_allclose(M[:, 7][np.arange(50) != 7], t[np.arange(50) != 7],
                                   rtol=1e-8)

    @given(random_chains(min_states=3, max_states=12))
    @settings(max_examples=15, deadline=None)
    def test_all_entries_positive(self, chain):
        M = pairwise_mean_first_passage(chain)
        assert np.all(M > 0)


class TestTimeAverageVariance:
    def test_iid_chain_reduces_to_plain_variance(self):
        # rows identical -> f(X_k) i.i.d. -> sigma^2 = Var[f]
        P = np.tile(np.array([0.3, 0.7]), (2, 1))
        chain = MarkovChain(P)
        f = np.array([0.0, 1.0])
        var = time_average_variance(chain, f)
        assert var == pytest.approx(0.3 * 0.7, rel=1e-10)

    def test_matches_autocovariance_series(self, two_state_chain):
        """sigma^2 = R(0) + 2 sum_{k>=1} R(k)."""
        eta = solve_direct(two_state_chain.P).distribution
        f = np.array([0.0, 1.0])
        R = autocovariance(two_state_chain, eta, f, 200)
        series = R[0] + 2.0 * R[1:].sum()
        var = time_average_variance(two_state_chain, f, eta)
        assert var == pytest.approx(series, rel=1e-8)

    def test_constant_function_zero_variance(self, birth_death_chain):
        f = np.full(birth_death_chain.n_states, 2.0)
        assert time_average_variance(birth_death_chain, f) == pytest.approx(0.0, abs=1e-10)

    def test_shape_check(self, two_state_chain):
        with pytest.raises(ValueError):
            time_average_variance(two_state_chain, np.ones(3))

    def test_positively_correlated_chain_inflates_variance(self):
        """A sticky chain has larger time-average variance than i.i.d."""
        sticky = MarkovChain(np.array([[0.95, 0.05], [0.05, 0.95]]))
        f = np.array([0.0, 1.0])
        var = time_average_variance(sticky, f)
        assert var > 0.25  # i.i.d. fair coin would be 0.25

    def test_monte_carlo_agreement(self, rng):
        """Empirical variance of block sums matches the CLT prediction."""
        chain = MarkovChain(np.array([[0.7, 0.3], [0.4, 0.6]]))
        f = np.array([0.0, 1.0])
        sigma2 = time_average_variance(chain, f)
        path = chain.simulate(200_000, rng)
        values = f[path[1:]]
        block = 200
        n_blocks = len(values) // block
        sums = values[: n_blocks * block].reshape(n_blocks, block).sum(axis=1)
        empirical = sums.var() / block
        assert empirical == pytest.approx(sigma2, rel=0.15)
