"""Solve-context layer: structural digests, hierarchy cache, AMG Krylov.

The tentpole claim under test is the construction/use split: hierarchy
*construction* (partitions) is keyed by a structural digest and cached in
a :class:`SolveContext`, while hierarchy *use* (iterate-weighted coarse
operators, warm starts) stays per-solve.  These tests pin down

* digest semantics -- noise-only spec variants share a digest, structural
  changes do not, and a chain digests identically to its operator wrapper;
* cache and warm-start counters on :class:`SolveContext`;
* ``preconditioner="amg"`` on all three TPM backends, including an
  operator stripped of ``to_csr`` (fully matrix-free);
* the typed error for ``preconditioner="ilu"`` on matrix-free operators;
* coarsening edge cases (singleton partitions, the ``coarsest_size``
  boundary) and the Galerkin row-sum-preservation property across the
  three backend ``restrict`` implementations.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdr import CDRTransitionOperator, PhaseGrid, build_cdr_chain
from repro.fsm import KroneckerDescriptor, synchronous_product
from repro.markov import (
    AMGPreconditioner,
    MarkovChain,
    Partition,
    SolveContext,
    build_hierarchy,
    lumped_tpm,
    random_chain,
    solve_direct,
    stationary_distribution,
    strength_of_connection_partition,
    structural_digest,
)
from repro.markov.conformance import (
    bangbang_frequency_fixture,
    birth_death_fixture,
    mesochronous_fixture,
    nearly_uncoupled_fixture,
)
from repro.markov.linop import OperatorCapabilityError, as_operator
from repro.noise import DiscreteDistribution, eye_opening_noise


def cdr_params(M=32, counter=3, nw_std=0.06):
    grid = PhaseGrid(M)
    return dict(
        grid=grid,
        nw=eye_opening_noise(nw_std, n_atoms=7),
        nr=DiscreteDistribution(
            [-grid.step, 0.0, grid.step], [0.2, 0.5, 0.3]
        ),
        counter_length=counter,
        phase_step_units=2,
        max_run_length=2,
    )


class StrippedOperator:
    """A genuinely matrix-free view: protocol + restrict, no ``to_csr``."""

    def __init__(self, op):
        self._op = op

    @property
    def shape(self):
        return self._op.shape

    def matvec(self, v):
        return self._op.matvec(v)

    def rmatvec(self, x):
        return self._op.rmatvec(x)

    def diagonal(self):
        return self._op.diagonal()

    def row_sums(self):
        return self._op.row_sums()

    def restrict(self, partition, weights=None):
        return self._op.restrict(partition, weights)

    def structure_token(self):
        return self._op.structure_token()

    def multigrid_strategy(self):
        return self._op.multigrid_strategy()


# --------------------------------------------------------------------- #
# structural digests
# --------------------------------------------------------------------- #

class TestStructuralDigest:
    def test_chain_digests_like_its_operator_wrapper(self):
        model = build_cdr_chain(**cdr_params())
        assert structural_digest(model.chain) == structural_digest(
            as_operator(model.chain)
        )

    def test_noise_only_variants_share_a_digest(self):
        # Different noise stds change probabilities (and can change the
        # assembled sparsity pattern when near-zero atoms drop out) but
        # not the structure the hierarchy depends on.
        a = build_cdr_chain(**cdr_params(nw_std=0.03))
        b = build_cdr_chain(**cdr_params(nw_std=0.09))
        assert structural_digest(a.chain) == structural_digest(b.chain)

    def test_structural_change_changes_the_digest(self):
        a = build_cdr_chain(**cdr_params(counter=2))
        b = build_cdr_chain(**cdr_params(counter=3))
        assert structural_digest(a.chain) != structural_digest(b.chain)

    def test_matrix_free_operator_tokens(self):
        a = CDRTransitionOperator(**cdr_params(nw_std=0.03))
        b = CDRTransitionOperator(**cdr_params(nw_std=0.09))
        c = CDRTransitionOperator(**cdr_params(M=64))
        assert structural_digest(a) == structural_digest(b)
        assert structural_digest(a) != structural_digest(c)

    def test_plain_matrices_digest_by_sparsity_pattern(self):
        P1 = sp.csr_matrix(np.array([[0.5, 0.5], [0.25, 0.75]]))
        P2 = sp.csr_matrix(np.array([[0.9, 0.1], [0.6, 0.4]]))
        P3 = sp.csr_matrix(np.array([[1.0, 0.0], [0.5, 0.5]]))
        assert structural_digest(P1) == structural_digest(P2)
        assert structural_digest(P1) != structural_digest(P3)


# --------------------------------------------------------------------- #
# the SolveContext cache
# --------------------------------------------------------------------- #

class TestSolveContext:
    def test_second_lookup_is_a_hit(self):
        chain = birth_death_fixture(64)
        ctx = SolveContext(coarsest_size=16)
        h1 = ctx.hierarchy_for(chain)
        h2 = ctx.hierarchy_for(chain)
        assert h1 is h2
        stats = ctx.stats()
        assert stats["hierarchy_hits"] == 1
        assert stats["hierarchy_misses"] == 1
        assert stats["cached_structures"] == 1
        assert stats["hierarchy_build_seconds"] > 0.0

    def test_noise_variants_share_one_hierarchy(self):
        a = build_cdr_chain(**cdr_params(nw_std=0.03))
        b = build_cdr_chain(**cdr_params(nw_std=0.09))
        ctx = SolveContext(coarsest_size=16)
        assert ctx.hierarchy_for(a.chain) is ctx.hierarchy_for(b.chain)
        assert ctx.stats()["cached_structures"] == 1

    def test_warm_start_store_roundtrip(self):
        chain = birth_death_fixture(64)
        ctx = SolveContext()
        assert ctx.warm_start_for(chain) is None
        pi = solve_direct(chain).distribution
        ctx.record_solution(chain, pi)
        warm = ctx.warm_start_for(chain)
        np.testing.assert_allclose(warm, pi)
        assert ctx.stats()["warm_starts"] == 1

    def test_warm_start_disabled_context_still_caches(self):
        chain = birth_death_fixture(64)
        ctx = SolveContext(warm_start=False)
        ctx.record_solution(chain, solve_direct(chain).distribution)
        assert ctx.warm_start_for(chain) is None
        ctx.hierarchy_for(chain)
        assert ctx.stats()["hierarchy_misses"] == 1

    def test_context_solve_warm_starts_second_call(self):
        chain = birth_death_fixture(200)
        ctx = SolveContext(coarsest_size=32)
        first = ctx.solve(chain, method="krylov", tol=1e-10)
        second = ctx.solve(chain, method="krylov", tol=1e-10)
        assert first.converged and second.converged
        assert not first.warm_started
        assert second.warm_started
        assert second.iterations <= first.iterations
        np.testing.assert_allclose(
            second.distribution, first.distribution, atol=1e-8
        )


# --------------------------------------------------------------------- #
# AMG-preconditioned Krylov on every backend
# --------------------------------------------------------------------- #

def _kronecker_fixture() -> KroneckerDescriptor:
    rng = np.random.default_rng(7)
    return synchronous_product(
        [random_chain(6, rng).P, random_chain(8, rng).P]
    )


@pytest.mark.amg
class TestKrylovAMG:
    @pytest.mark.parametrize("backend", ["assembled", "matrix-free", "kronecker"])
    def test_amg_converges_on_all_backends(self, backend):
        if backend == "assembled":
            op = build_cdr_chain(**cdr_params()).chain
        elif backend == "matrix-free":
            op = CDRTransitionOperator(**cdr_params())
        else:
            op = _kronecker_fixture()
        hierarchy = build_hierarchy(op, strategy="algebraic", coarsest_size=16)
        result = stationary_distribution(
            op, method="krylov", preconditioner="amg",
            hierarchy=hierarchy, tol=1e-10,
        )
        assert result.converged
        assert "amg" in result.method
        reference = stationary_distribution(op, method="power", tol=1e-12)
        np.testing.assert_allclose(
            result.distribution, reference.distribution, atol=1e-7
        )

    def test_amg_works_without_to_csr(self):
        # Fully matrix-free: the operator cannot assemble itself at all,
        # so coarsening must come from structure (phase-pairing), and the
        # preconditioner's coarse levels from restrict().
        op = StrippedOperator(CDRTransitionOperator(**cdr_params()))
        hierarchy = build_hierarchy(op, strategy="auto", coarsest_size=16)
        assert hierarchy.n_levels > 1  # coarsening actually happened
        result = stationary_distribution(
            op, method="krylov", preconditioner="amg",
            hierarchy=hierarchy, tol=1e-10,
        )
        assert result.converged

    def test_amg_via_solve_context(self):
        op = CDRTransitionOperator(**cdr_params())
        ctx = SolveContext(strategy="algebraic", coarsest_size=16)
        result = stationary_distribution(
            op, method="krylov", preconditioner="amg",
            hierarchy=ctx, tol=1e-10,
        )
        assert result.converged
        assert ctx.stats()["hierarchy_misses"] == 1

    def test_mismatched_hierarchy_rejected(self):
        small = birth_death_fixture(32)
        big = birth_death_fixture(64)
        hierarchy = build_hierarchy(small, strategy="algebraic", coarsest_size=8)
        with pytest.raises(ValueError, match="built for 32 states"):
            AMGPreconditioner(as_operator(big), hierarchy)

    def test_restrictless_operator_rejected_when_levels_exist(self):
        chain = birth_death_fixture(64)
        hierarchy = build_hierarchy(chain, strategy="algebraic", coarsest_size=8)

        class NoRestrict:
            shape = (64, 64)

            def __init__(self, P):
                self._P = P

            def matvec(self, v):
                return self._P @ v

            def rmatvec(self, x):
                return self._P.T @ x

            def diagonal(self):
                return self._P.diagonal()

            def row_sums(self):
                return np.asarray(self._P.sum(axis=1)).ravel()

        with pytest.raises(OperatorCapabilityError, match="restrict"):
            AMGPreconditioner(NoRestrict(chain.P), hierarchy)


class TestIluCapability:
    def test_explicit_ilu_on_matrix_free_raises_typed_error(self):
        op = CDRTransitionOperator(**cdr_params())
        with pytest.raises(OperatorCapabilityError, match="ILU"):
            stationary_distribution(
                op, method="krylov", preconditioner="ilu", tol=1e-10
            )

    def test_explicit_ilu_on_assembled_still_works(self):
        chain = birth_death_fixture(64)
        result = stationary_distribution(
            chain, method="krylov", preconditioner="ilu", tol=1e-10
        )
        assert result.converged

    def test_unknown_preconditioner_rejected(self):
        with pytest.raises(ValueError, match="unknown preconditioner"):
            stationary_distribution(
                birth_death_fixture(16), method="krylov",
                preconditioner="cholesky",
            )


# --------------------------------------------------------------------- #
# coarsening edge cases
# --------------------------------------------------------------------- #

class TestCoarseningEdgeCases:
    def test_all_singleton_partition_restricts_to_the_same_chain(self):
        chain = birth_death_fixture(16)
        singletons = Partition(np.arange(16))
        coarse = lumped_tpm(chain.P, singletons)
        np.testing.assert_allclose(
            coarse.toarray(), chain.P.toarray(), atol=1e-15
        )

    def test_decoupled_chain_yields_singletons_and_no_levels(self):
        # Self-loop-only chain: no off-diagonal coupling, so the
        # strength-of-connection aggregation leaves every state alone and
        # hierarchy construction stops instead of looping.
        P = sp.identity(12, format="csr")
        part = strength_of_connection_partition(P)
        assert part.n_blocks == 12
        hierarchy = build_hierarchy(
            MarkovChain(P), strategy="algebraic", coarsest_size=2
        )
        assert hierarchy.level_sizes == (12,)
        assert hierarchy.partitions == ()

    def test_coarsest_size_boundary(self):
        chain = birth_death_fixture(64)
        at = build_hierarchy(chain, strategy="algebraic", coarsest_size=64)
        below = build_hierarchy(chain, strategy="algebraic", coarsest_size=63)
        assert at.level_sizes == (64,)  # already coarse enough: no levels
        assert below.n_levels > 1
        assert below.level_sizes[-1] <= 63 or below.n_levels == 25

    def test_max_levels_caps_the_stack(self):
        chain = birth_death_fixture(64)
        capped = build_hierarchy(
            chain, strategy="algebraic", coarsest_size=2, max_levels=2
        )
        assert capped.n_levels <= 2

    def test_level_sizes_strictly_decrease(self):
        hierarchy = build_hierarchy(
            birth_death_fixture(128), strategy="algebraic", coarsest_size=4
        )
        sizes = hierarchy.level_sizes
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_theta_validation(self):
        P = birth_death_fixture(8).P
        with pytest.raises(ValueError, match="theta"):
            strength_of_connection_partition(P, theta=0.0)
        with pytest.raises(ValueError, match="max_aggregate"):
            strength_of_connection_partition(P, max_aggregate=1)


# --------------------------------------------------------------------- #
# Galerkin row-sum preservation across backends (property test)
# --------------------------------------------------------------------- #

_ASSEMBLED = as_operator(build_cdr_chain(**cdr_params(M=16, counter=2)).chain)
_MATRIX_FREE = CDRTransitionOperator(**cdr_params(M=16, counter=2))
_KRONECKER = _kronecker_fixture()


@pytest.mark.amg
class TestGalerkinRowSums:
    @pytest.mark.parametrize(
        "op", [_ASSEMBLED, _MATRIX_FREE, _KRONECKER],
        ids=["assembled", "matrix-free", "kronecker"],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_coarse_operator_rows_sum_to_one(self, op, seed):
        # Any partition and any positive weighting: the weighted Galerkin
        # restriction of a stochastic operator is stochastic.
        n = op.shape[0]
        rng = np.random.default_rng(seed)
        raw = rng.integers(0, max(2, n // 3), size=n)
        _, block_of = np.unique(raw, return_inverse=True)
        partition = Partition(block_of)
        weights = rng.uniform(0.1, 1.0, size=n)
        coarse = op.restrict(partition, weights)
        rows = np.asarray(coarse.sum(axis=1)).ravel()
        np.testing.assert_allclose(rows, 1.0, atol=1e-10)

    @pytest.mark.parametrize(
        "op", [_MATRIX_FREE, _KRONECKER], ids=["matrix-free", "kronecker"]
    )
    def test_restrict_matches_assembled_lumping(self, op):
        rng = np.random.default_rng(3)
        n = op.shape[0]
        raw = rng.integers(0, n // 2, size=n)
        _, block_of = np.unique(raw, return_inverse=True)
        partition = Partition(block_of)
        weights = rng.uniform(0.1, 1.0, size=n)
        expected = lumped_tpm(
            sp.csr_matrix(op.to_csr() if hasattr(op, "to_csr") else op.to_sparse()),
            partition, weights=weights,
        )
        got = op.restrict(partition, weights)
        np.testing.assert_allclose(
            got.toarray(), expected.toarray(), atol=1e-12
        )


# --------------------------------------------------------------------- #
# algebraic coarsening on the conformance fixtures
# --------------------------------------------------------------------- #

@pytest.mark.amg
class TestAlgebraicConformance:
    @pytest.mark.parametrize(
        "fixture",
        [
            lambda: birth_death_fixture(64),
            nearly_uncoupled_fixture,
            bangbang_frequency_fixture,
            mesochronous_fixture,
        ],
        ids=["birth-death", "nearly-uncoupled", "bangbang", "mesochronous"],
    )
    def test_multigrid_algebraic_matches_direct(self, fixture):
        chain = fixture()
        result = stationary_distribution(
            chain, method="multigrid", strategy="algebraic",
            coarsest_size=16, tol=1e-10,
        )
        assert result.converged
        reference = solve_direct(chain)
        np.testing.assert_allclose(
            result.distribution, reference.distribution, atol=1e-7
        )
