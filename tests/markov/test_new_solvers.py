"""Tests for the SOR and Arnoldi solvers and the W-cycle multigrid."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.markov import (
    MultigridOptions,
    solve_direct,
    solve_eigen,
    solve_multigrid,
    solve_sor,
    stationary_distribution,
    subdominant_eigenvalue,
)

from .conftest import random_chains


class TestSOR:
    def test_matches_direct(self, birth_death_chain):
        ref = solve_direct(birth_death_chain.P).distribution
        res = solve_sor(birth_death_chain.P, tol=1e-11)
        assert res.converged
        assert np.abs(res.distribution - ref).sum() < 1e-8

    def test_omega_one_is_gauss_seidel_fixed_point(self, two_state_chain):
        res = solve_sor(two_state_chain.P, tol=1e-12, omega=1.0)
        np.testing.assert_allclose(res.distribution, [0.6, 0.4], atol=1e-9)

    def test_omega_validation(self, two_state_chain):
        with pytest.raises(ValueError):
            solve_sor(two_state_chain.P, omega=0.0)
        with pytest.raises(ValueError):
            solve_sor(two_state_chain.P, omega=2.0)

    def test_method_name(self, two_state_chain):
        res = solve_sor(two_state_chain.P, tol=1e-10, omega=1.3)
        assert "sor" in res.method

    def test_frontend_dispatch(self, birth_death_chain):
        res = stationary_distribution(birth_death_chain, method="sor", tol=1e-10)
        assert res.converged

    @given(random_chains(min_states=3, max_states=25))
    @settings(max_examples=15, deadline=None)
    def test_agrees_on_random_chains(self, chain):
        ref = solve_direct(chain.P).distribution
        res = solve_sor(chain.P, tol=1e-11, omega=1.1, max_iter=20_000)
        if res.converged:
            assert np.abs(res.distribution - ref).sum() < 1e-7


class TestArnoldi:
    def test_matches_direct(self, birth_death_chain):
        ref = solve_direct(birth_death_chain.P).distribution
        res = solve_eigen(birth_death_chain.P, tol=1e-12)
        assert np.abs(res.distribution - ref).sum() < 1e-7
        assert res.method == "arnoldi"

    def test_tiny_chain_fallback(self, two_state_chain):
        res = solve_eigen(two_state_chain.P)
        np.testing.assert_allclose(res.distribution, [0.6, 0.4], atol=1e-8)

    def test_frontend_dispatch(self, birth_death_chain):
        res = stationary_distribution(birth_death_chain, method="arnoldi", tol=1e-10)
        assert res.residual < 1e-6


class TestSubdominantEigenvalue:
    def test_two_state_closed_form(self, two_state_chain):
        # eigenvalues of [[.8,.2],[.3,.7]] are 1 and 0.5
        lam2, gap = subdominant_eigenvalue(two_state_chain.P)
        assert abs(lam2) == pytest.approx(0.5, abs=1e-8)
        assert gap == pytest.approx(0.5, abs=1e-8)

    def test_slow_chain_small_gap(self):
        from repro.markov import MarkovChain

        sticky = MarkovChain(np.array([[0.99, 0.01], [0.01, 0.99]]))
        _, gap = subdominant_eigenvalue(sticky.P)
        assert gap == pytest.approx(0.02, abs=1e-8)

    def test_gap_on_larger_chain(self, birth_death_chain):
        lam2, gap = subdominant_eigenvalue(birth_death_chain.P)
        assert 0.0 < gap < 1.0


class TestWCycle:
    def test_option_validation(self):
        with pytest.raises(ValueError, match="cycle_type"):
            MultigridOptions(cycle_type="F")

    def test_w_cycle_matches_direct(self, birth_death_chain):
        ref = solve_direct(birth_death_chain.P).distribution
        res = solve_multigrid(
            birth_death_chain.P, tol=1e-11, coarsest_size=8, cycle_type="W"
        )
        assert res.method == "multigrid-W"
        assert np.abs(res.distribution - ref).sum() < 1e-7

    def test_w_cycle_needs_no_more_cycles_than_v(self):
        import scipy.sparse as sp

        from repro.markov import MarkovChain

        n = 800
        rows, cols, vals = [], [], []
        for i in range(n):
            up = 0.02 if i < n - 1 else 0.0
            down = 0.025 if i > 0 else 0.0
            for j, p in ((i - 1, down), (i, 1 - up - down), (i + 1, up)):
                if p > 0:
                    rows.append(i)
                    cols.append(j)
                    vals.append(p)
        chain = MarkovChain(sp.coo_matrix((vals, (rows, cols)), shape=(n, n)))
        v = solve_multigrid(chain.P, tol=1e-10, coarsest_size=16, cycle_type="V")
        w = solve_multigrid(chain.P, tol=1e-10, coarsest_size=16, cycle_type="W")
        assert w.converged
        assert w.iterations <= v.iterations

    def test_frontend_cycle_type(self, birth_death_chain):
        res = stationary_distribution(
            birth_death_chain, method="multigrid", tol=1e-10, cycle_type="W",
            coarsest_size=8,
        )
        assert res.method == "multigrid-W"
