"""Shared fixtures and strategies for the Markov-chain tests."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import strategies as st

from repro.markov import MarkovChain, random_chain


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def two_state_chain():
    """The textbook 2-state chain with known stationary vector (0.6, 0.4)."""
    P = np.array([[0.8, 0.2], [0.3, 0.7]])
    return MarkovChain(P)


@pytest.fixture
def ring_chain():
    """Deterministic 4-cycle: irreducible, period 4, uniform stationary."""
    P = np.zeros((4, 4))
    for i in range(4):
        P[i, (i + 1) % 4] = 1.0
    return MarkovChain(P)


@pytest.fixture
def birth_death_chain():
    """A 50-state birth-death chain (structured, like a phase-error grid)."""
    n = 50
    rows, cols, vals = [], [], []
    for i in range(n):
        up = 0.3 if i < n - 1 else 0.0
        down = 0.4 if i > 0 else 0.0
        stay = 1.0 - up - down
        for j, p in ((i - 1, down), (i, stay), (i + 1, up)):
            if p > 0:
                rows.append(i)
                cols.append(j)
                vals.append(p)
    P = sp.coo_matrix((vals, (rows, cols)), shape=(n, n))
    return MarkovChain(P)


@pytest.fixture
def absorbing_chain():
    """3 transient states draining into an absorbing state."""
    P = np.array(
        [
            [0.5, 0.3, 0.1, 0.1],
            [0.2, 0.5, 0.2, 0.1],
            [0.1, 0.2, 0.5, 0.2],
            [0.0, 0.0, 0.0, 1.0],
        ]
    )
    return MarkovChain(P)


def random_chains(min_states=2, max_states=40):
    """Hypothesis strategy producing irreducible random chains."""
    return st.builds(
        lambda n, seed: random_chain(
            n, np.random.default_rng(seed), density=0.3, ensure_irreducible=True
        ),
        st.integers(min_value=min_states, max_value=max_states),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
