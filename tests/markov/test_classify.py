"""Tests for repro.markov.classify."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.markov import (
    MarkovChain,
    absorbing_states,
    classify,
    communicating_classes,
    is_aperiodic,
    is_irreducible,
    period,
    reachable_from,
)

from .conftest import random_chains


class TestIrreducibility:
    def test_irreducible(self, two_state_chain):
        assert is_irreducible(two_state_chain)

    def test_reducible(self, absorbing_chain):
        assert not is_irreducible(absorbing_chain)

    def test_ring(self, ring_chain):
        assert is_irreducible(ring_chain)

    @given(random_chains())
    @settings(max_examples=20, deadline=None)
    def test_random_backbone_chains_irreducible(self, chain):
        assert is_irreducible(chain)


class TestPeriod:
    def test_ring_period(self, ring_chain):
        assert period(ring_chain) == 4
        assert not is_aperiodic(ring_chain)

    def test_self_loop_aperiodic(self, two_state_chain):
        assert period(two_state_chain) == 1
        assert is_aperiodic(two_state_chain)

    def test_two_cycle(self):
        P = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert period(MarkovChain(P)) == 2

    def test_mixed_cycles_gcd(self):
        # cycles of length 2 and 3 share states -> period gcd(2,3)=1
        P = np.array(
            [
                [0.0, 0.5, 0.5],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
            ]
        )
        assert period(MarkovChain(P)) == 1

    def test_state_out_of_range(self, ring_chain):
        with pytest.raises(ValueError):
            period(ring_chain, state=10)


class TestClasses:
    def test_single_class(self, two_state_chain):
        classes = communicating_classes(two_state_chain)
        assert len(classes) == 1
        assert set(classes[0]) == {0, 1}

    def test_absorbing_split(self, absorbing_chain):
        classes = communicating_classes(absorbing_chain)
        assert len(classes) == 2
        # topological order: the transient class first
        assert set(classes[0].tolist()) == {0, 1, 2}
        assert set(classes[1].tolist()) == {3}

    def test_classify_absorbing(self, absorbing_chain):
        s = classify(absorbing_chain)
        assert not s.irreducible
        assert len(s.recurrent) == 1
        assert set(s.recurrent[0].tolist()) == {3}
        np.testing.assert_array_equal(s.transient_states, [0, 1, 2])
        assert s.period is None
        assert not s.is_ergodic
        assert "transient states      : 3" in s.describe()

    def test_classify_ergodic(self, two_state_chain):
        s = classify(two_state_chain)
        assert s.irreducible
        assert s.period == 1
        assert s.is_ergodic
        assert s.transient_states.size == 0

    def test_classify_periodic_not_ergodic(self, ring_chain):
        s = classify(ring_chain)
        assert s.irreducible
        assert s.period == 4
        assert not s.is_ergodic

    def test_two_recurrent_classes(self):
        P = np.array(
            [
                [1.0, 0.0, 0.0],
                [0.3, 0.4, 0.3],
                [0.0, 0.0, 1.0],
            ]
        )
        s = classify(MarkovChain(P))
        assert len(s.recurrent) == 2
        np.testing.assert_array_equal(s.transient_states, [1])


class TestAbsorbingStates:
    def test_found(self, absorbing_chain):
        np.testing.assert_array_equal(absorbing_states(absorbing_chain), [3])

    def test_none(self, two_state_chain):
        assert absorbing_states(two_state_chain).size == 0


class TestReachability:
    def test_all_reachable_in_irreducible(self, birth_death_chain):
        r = reachable_from(birth_death_chain, [0])
        assert r.size == birth_death_chain.n_states

    def test_absorbing_traps(self, absorbing_chain):
        r = reachable_from(absorbing_chain, [3])
        np.testing.assert_array_equal(r, [3])

    def test_multiple_sources(self, absorbing_chain):
        r = reachable_from(absorbing_chain, [0, 3])
        assert r.size == 4
