"""Tests for stationary-distribution perturbation analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import (
    MarkovChain,
    condition_number,
    perturbed_stationary,
    solve_direct,
    stationary_perturbation,
)

from .conftest import random_chains


def two_state(p=0.2, q=0.3):
    return MarkovChain(np.array([[1 - p, p], [q, 1 - q]]))


def direction_two_state():
    """Perturb p upward (zero row sums)."""
    return np.array([[-1.0, 1.0], [0.0, 0.0]])


class TestStationaryPerturbation:
    def test_two_state_closed_form(self):
        # eta_1(p) = p / (p + q); d eta_1 / dp = q / (p+q)^2.
        p, q = 0.2, 0.3
        chain = two_state(p, q)
        d = stationary_perturbation(chain, direction_two_state())
        expected = q / (p + q) ** 2
        assert d[1] == pytest.approx(expected, rel=1e-10)
        assert d[0] == pytest.approx(-expected, rel=1e-10)

    def test_derivative_sums_to_zero(self, birth_death_chain):
        n = birth_death_chain.n_states
        rng = np.random.default_rng(0)
        dP = rng.normal(size=(n, n))
        dP -= dP.mean(axis=1, keepdims=True)  # zero row sums
        d = stationary_perturbation(birth_death_chain, dP)
        assert d.sum() == pytest.approx(0.0, abs=1e-9)

    def test_rejects_nonzero_row_sums(self, two_state_chain):
        with pytest.raises(ValueError, match="sum to zero"):
            stationary_perturbation(two_state_chain, np.ones((2, 2)))

    def test_rejects_wrong_shape(self, two_state_chain):
        with pytest.raises(ValueError, match="2x2"):
            stationary_perturbation(two_state_chain, np.zeros((3, 3)))

    @given(random_chains(min_states=3, max_states=15),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_matches_finite_difference(self, chain, seed):
        """The analytical derivative agrees with a central difference of
        exact stationary solves."""
        rng = np.random.default_rng(seed)
        n = chain.n_states
        P = chain.to_dense()
        # A safe perturbation direction: redistribute within each row's
        # support, scaled so P +- t dP stays stochastic.
        dP = rng.normal(size=(n, n)) * (P > 0)
        dP -= (dP.sum(axis=1, keepdims=True)) * (P > 0) / np.maximum(
            (P > 0).sum(axis=1, keepdims=True), 1
        )
        # keep entries feasible
        t = 1e-6
        scale = np.abs(dP).max()
        if scale == 0:
            return
        dP /= scale
        lo = P - t * dP
        hi = P + t * dP
        if lo.min() < 0 or hi.min() < 0:
            return
        d_analytic = stationary_perturbation(chain, dP)
        eta_hi = solve_direct(MarkovChain(hi).P).distribution
        eta_lo = solve_direct(MarkovChain(lo).P).distribution
        d_numeric = (eta_hi - eta_lo) / (2 * t)
        assert np.abs(d_analytic - d_numeric).max() < 1e-4 * max(
            1.0, np.abs(d_analytic).max()
        )


class TestPerturbedStationary:
    def test_first_order_estimate_close(self):
        chain = two_state()
        t = 0.01
        est = perturbed_stationary(chain, direction_two_state(), t)
        exact = solve_direct(two_state(0.2 + t, 0.3).P).distribution
        assert np.abs(est - exact).max() < 5e-4  # O(t^2)

    def test_normalized(self, birth_death_chain):
        n = birth_death_chain.n_states
        dP = np.zeros((n, n))
        est = perturbed_stationary(birth_death_chain, dP, 0.1)
        assert est.sum() == pytest.approx(1.0, abs=1e-12)


class TestConditionNumber:
    def test_bound_holds_empirically(self):
        chain = two_state()
        kappa = condition_number(chain)
        eta = solve_direct(chain.P).distribution
        for t in (0.01, 0.05):
            P2 = two_state(0.2 + t, 0.3)
            eta2 = solve_direct(P2.P).distribution
            norm_inf = 2 * t  # ||P' - P||_inf = sum of |row changes|
            assert np.abs(eta2 - eta).max() <= kappa * norm_inf + 1e-9

    def test_sticky_chain_worse_conditioned(self):
        fast = MarkovChain(np.array([[0.5, 0.5], [0.5, 0.5]]))
        sticky = MarkovChain(np.array([[0.99, 0.01], [0.01, 0.99]]))
        assert condition_number(sticky) > 10 * condition_number(fast)

    def test_nonnegative(self, birth_death_chain):
        assert condition_number(birth_death_chain) > 0.0
