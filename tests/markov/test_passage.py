"""Tests for first-passage / event-rate analysis (S8)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import (
    MarkovChain,
    expected_visits,
    hitting_probabilities,
    mean_first_passage_times,
    mean_recurrence_time,
    mean_time_between_events,
    solve_direct,
    stationary_event_rate,
)

from .conftest import random_chains


class TestMeanFirstPassage:
    def test_two_state_closed_form(self, two_state_chain):
        # From state 0, hitting {1}: geometric with p = 0.2 -> mean 5.
        t = mean_first_passage_times(two_state_chain, [1])
        assert t[1] == 0.0
        assert t[0] == pytest.approx(5.0)

    def test_target_states_zero(self, birth_death_chain):
        t = mean_first_passage_times(birth_death_chain, [0, 1])
        assert t[0] == 0.0 and t[1] == 0.0
        assert np.all(t[2:] > 0.0)

    def test_monotone_in_birth_death(self, birth_death_chain):
        # Further from the target -> longer hitting time.
        t = mean_first_passage_times(birth_death_chain, [0])
        assert np.all(np.diff(t) > 0.0)

    def test_all_states_target(self, two_state_chain):
        t = mean_first_passage_times(two_state_chain, [0, 1])
        np.testing.assert_allclose(t, 0.0)

    def test_unreachable_is_inf(self):
        P = np.array([[1.0, 0.0], [0.5, 0.5]])  # state 0 absorbing
        t = mean_first_passage_times(MarkovChain(P), [1])
        assert t[0] == np.inf

    def test_validation(self, two_state_chain):
        with pytest.raises(ValueError, match="non-empty"):
            mean_first_passage_times(two_state_chain, [])
        with pytest.raises(ValueError, match="out of range"):
            mean_first_passage_times(two_state_chain, [5])

    @given(random_chains(min_states=3, max_states=25),
           st.integers(min_value=0, max_value=24))
    @settings(max_examples=20, deadline=None)
    def test_one_step_recursion(self, chain, tseed):
        """t_i = 1 + sum_j P_ij t_j for i outside the target set."""
        target = tseed % chain.n_states
        t = mean_first_passage_times(chain, [target])
        if not np.all(np.isfinite(t)):
            return
        P = chain.to_dense()
        for i in range(chain.n_states):
            if i == target:
                continue
            rhs = 1.0 + sum(P[i, j] * t[j] for j in range(chain.n_states))
            assert t[i] == pytest.approx(rhs, rel=1e-6)


class TestKacFormula:
    @given(random_chains(min_states=3, max_states=20),
           st.integers(min_value=0, max_value=19))
    @settings(max_examples=20, deadline=None)
    def test_kac_single_state(self, chain, sseed):
        """Mean return time to state i equals 1/eta_i.

        Return time = 1 step + mean first passage back, averaged over the
        exit distribution: m_i = 1 + sum_j P_ij t_j(i) = 1 / eta_i.
        """
        i = sseed % chain.n_states
        eta = solve_direct(chain.P).distribution
        t = mean_first_passage_times(chain, [i])
        P = chain.to_dense()
        m_i = 1.0 + sum(P[i, j] * t[j] for j in range(chain.n_states))
        assert m_i == pytest.approx(1.0 / eta[i], rel=1e-6)

    def test_mean_recurrence_time_helper(self):
        eta = np.array([0.25, 0.75])
        assert mean_recurrence_time(eta, [0]) == pytest.approx(4.0)
        assert mean_recurrence_time(eta, [0, 1]) == pytest.approx(1.0)

    def test_zero_mass_is_inf(self):
        eta = np.array([1.0, 0.0])
        assert mean_recurrence_time(eta, [1]) == np.inf


class TestHittingProbabilities:
    def test_irreducible_hits_everything(self, birth_death_chain):
        h = hitting_probabilities(birth_death_chain, [0])
        np.testing.assert_allclose(h, 1.0, atol=1e-8)

    def test_gambler_ruin(self):
        # Symmetric random walk on 0..4 with absorbing ends:
        # P(hit 4 before 0 | start at i) = i / 4.
        n = 5
        P = np.zeros((n, n))
        P[0, 0] = P[n - 1, n - 1] = 1.0
        for i in range(1, n - 1):
            P[i, i - 1] = P[i, i + 1] = 0.5
        h = hitting_probabilities(MarkovChain(P), [n - 1], avoid=[0])
        np.testing.assert_allclose(h, [0.0, 0.25, 0.5, 0.75, 1.0], atol=1e-10)

    def test_overlap_rejected(self, two_state_chain):
        with pytest.raises(ValueError, match="overlap"):
            hitting_probabilities(two_state_chain, [0], avoid=[0])

    def test_target_is_one(self, two_state_chain):
        h = hitting_probabilities(two_state_chain, [1])
        assert h[1] == 1.0


class TestExpectedVisits:
    def test_absorbing_chain(self, absorbing_chain):
        N = expected_visits(absorbing_chain, [3])
        # Row sums of N are the mean absorption times.
        t = mean_first_passage_times(absorbing_chain, [3])
        np.testing.assert_allclose(N.sum(axis=1), t[:3], atol=1e-9)

    def test_no_transient(self, two_state_chain):
        N = expected_visits(two_state_chain, [0, 1])
        assert N.shape == (0, 0)

    def test_size_guard(self):
        import repro.markov.passage as passage

        big = MarkovChain(sp.identity(5000, format="csr"), validate=False)
        with pytest.raises(ValueError, match="too large"):
            passage.expected_visits(big, [0])


class TestEventRates:
    def test_event_rate_full_matrix(self, two_state_chain):
        # Every transition is an "event": rate 1 per step.
        rate = stationary_event_rate(
            solve_direct(two_state_chain.P).distribution, two_state_chain.P
        )
        assert rate == pytest.approx(1.0)

    def test_partial_event_matrix(self, two_state_chain):
        eta = solve_direct(two_state_chain.P).distribution  # (0.6, 0.4)
        E = sp.csr_matrix(np.array([[0.0, 0.2], [0.0, 0.0]]))  # only 0->1 counts
        rate = stationary_event_rate(eta, E)
        assert rate == pytest.approx(0.6 * 0.2)
        assert mean_time_between_events(eta, E) == pytest.approx(1.0 / (0.6 * 0.2))

    def test_zero_rate_gives_inf(self, two_state_chain):
        eta = solve_direct(two_state_chain.P).distribution
        E = sp.csr_matrix((2, 2))
        assert mean_time_between_events(eta, E) == np.inf

    def test_size_check(self, two_state_chain):
        with pytest.raises(ValueError):
            stationary_event_rate(np.ones(3) / 3, two_state_chain.P)

    def test_flux_matches_kac_for_entry_events(self, birth_death_chain):
        """Entering set A: flux of transitions (not A) -> A equals
        eta-mass entering A per step; its inverse is the mean time between
        entries, consistent with Kac on the entry boundary."""
        eta = solve_direct(birth_death_chain.P).distribution
        A = {0, 1}
        coo = birth_death_chain.P.tocoo()
        mask = np.array([r not in A and c in A for r, c in zip(coo.row, coo.col)])
        E = sp.csr_matrix(
            (coo.data[mask], (coo.row[mask], coo.col[mask])),
            shape=birth_death_chain.P.shape,
        )
        rate = stationary_event_rate(eta, E)
        # In stationarity, entry rate == exit rate and both equal
        # P(X_k not in A, X_{k+1} in A).
        maskx = np.array([r in A and c not in A for r, c in zip(coo.row, coo.col)])
        Ex = sp.csr_matrix(
            (coo.data[maskx], (coo.row[maskx], coo.col[maskx])),
            shape=birth_death_chain.P.shape,
        )
        exit_rate = stationary_event_rate(eta, Ex)
        assert rate == pytest.approx(exit_rate, rel=1e-9)
