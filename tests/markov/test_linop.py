"""Tests for the TransitionOperator protocol layer and solver registry."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.markov import (
    AssembledOperator,
    MarkovChain,
    OperatorCapabilityError,
    TransitionOperator,
    as_operator,
    ensure_csr,
    get_solver,
    operator_residual,
    random_chain,
    register_solver,
    solver_names,
    solver_table,
    stationary_distribution,
)
from repro.markov.lumping import Partition, lumped_tpm
from repro.markov.solvers.direct import augmented_system
from repro.markov.solvers.result import iterate_fixed_point


def chain(n=24, seed=5):
    return random_chain(n, np.random.default_rng(seed), density=0.4)


class TestAssembledOperator:
    def test_wraps_chain_and_sparse_and_dense(self):
        mc = chain()
        for obj in (mc, mc.P, mc.P.toarray()):
            op = as_operator(obj)
            assert isinstance(op, AssembledOperator)
            assert op.shape == (mc.n_states, mc.n_states)

    def test_matvec_rmatvec(self):
        mc = chain()
        op = as_operator(mc)
        rng = np.random.default_rng(0)
        x = rng.random(mc.n_states)
        np.testing.assert_allclose(op.matvec(x), mc.P.dot(x), atol=1e-14)
        np.testing.assert_allclose(op.rmatvec(x), mc.P.T.dot(x), atol=1e-14)

    def test_diagonal_and_row_sums(self):
        mc = chain()
        op = as_operator(mc)
        np.testing.assert_allclose(op.diagonal(), mc.P.diagonal())
        np.testing.assert_allclose(op.row_sums(), 1.0, atol=1e-12)

    def test_to_csr_is_identity(self):
        mc = chain()
        op = as_operator(mc)
        assert op.to_csr() is mc.P

    def test_restrict_matches_lumped_tpm(self):
        mc = chain()
        part = Partition(np.arange(mc.n_states) // 3)
        w = np.random.default_rng(1).random(mc.n_states)
        C_op = as_operator(mc).restrict(part, w)
        C_ref = lumped_tpm(mc.P, part, weights=w)
        np.testing.assert_allclose(C_op.toarray(), C_ref.toarray(), atol=1e-14)

    def test_idempotent_wrapping(self):
        op = as_operator(chain())
        assert as_operator(op) is op

    def test_runtime_protocol_check(self):
        assert isinstance(as_operator(chain()), TransitionOperator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_operator("not an operator")


class _MatvecOnly:
    """Minimal duck-typed operator without to_csr."""

    def __init__(self, P):
        self._P = P.tocsr()

    @property
    def shape(self):
        return self._P.shape

    def matvec(self, v):
        return self._P.dot(v)

    def rmatvec(self, x):
        return self._P.T.dot(x)

    def diagonal(self):
        return self._P.diagonal()

    def row_sums(self):
        return np.asarray(self._P.sum(axis=1)).ravel()


class TestEnsureCsr:
    def test_passthrough_paths(self):
        mc = chain()
        assert ensure_csr(mc) is mc.P
        assert sp.issparse(ensure_csr(mc.P.toarray()))

    def test_capability_error_without_to_csr(self):
        op = _MatvecOnly(chain().P)
        with pytest.raises(OperatorCapabilityError, match="matrix-free"):
            ensure_csr(op)

    def test_duck_typed_operator_accepted_as_is(self):
        op = _MatvecOnly(chain().P)
        assert as_operator(op) is op

    def test_matrix_free_solver_works_without_to_csr(self):
        mc = chain()
        res = stationary_distribution(_MatvecOnly(mc.P), method="power", tol=1e-11)
        ref = stationary_distribution(mc, method="direct")
        assert res.converged
        np.testing.assert_allclose(res.distribution, ref.distribution, atol=1e-8)

    def test_csr_solver_raises_cleanly_without_to_csr(self):
        with pytest.raises(OperatorCapabilityError):
            stationary_distribution(_MatvecOnly(chain().P), method="direct")


class TestRegistry:
    def test_expected_solvers_registered(self):
        assert set(solver_names()) == {
            "arnoldi", "direct", "gauss-seidel", "jacobi",
            "krylov", "multigrid", "power", "sor",
        }

    def test_matrix_free_flags(self):
        flags = {e.name: e.matrix_free for e in solver_table()}
        assert flags["power"] and flags["jacobi"]
        assert flags["krylov"] and flags["multigrid"]
        assert not flags["direct"] and not flags["arnoldi"]
        assert not flags["gauss-seidel"] and not flags["sor"]

    def test_unknown_method_error(self):
        with pytest.raises(ValueError, match="unknown method"):
            get_solver("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_solver("power", matrix_free=True)(lambda *a, **k: None)

    def test_every_solver_dispatches_through_registry(self):
        mc = chain(n=30, seed=7)
        ref = stationary_distribution(mc, method="direct").distribution
        for entry in solver_table():
            res = entry.fn(
                as_operator(mc), tol=1e-11, max_iter=None, x0=None, monitor=None
            )
            assert res.converged, entry.name
            np.testing.assert_allclose(
                res.distribution, ref, atol=1e-7, err_msg=entry.name
            )

    def test_solver_names_alias_removed(self):
        # The deprecated SOLVER_NAMES tuple is gone; the registry is the
        # only source of truth for available solvers.
        import repro.markov as markov
        import repro.markov.stationary as stationary

        for module in (markov, stationary):
            with pytest.raises(AttributeError):
                module.SOLVER_NAMES
        assert len(solver_names()) == 8


class TestIterateFixedPoint:
    def test_driver_telemetry_is_uniform(self):
        from repro.markov.monitor import RecordingMonitor

        mc = chain()
        op = as_operator(mc)
        mon = RecordingMonitor()

        def step(x):
            y = op.rmatvec(x)
            return y / y.sum()

        res = iterate_fixed_point(
            mc.n_states, step, lambda x: operator_residual(op, x),
            method="power", tol=1e-11, max_iter=10_000, monitor=mon,
        )
        assert res.converged
        assert res.method == "power"
        assert res.iterations == len(mon.events)
        assert res.residual == pytest.approx(mon.events[-1].residual)
        assert res.residual_history[-1] < 1e-11

    def test_driver_reports_non_convergence(self):
        op = as_operator(chain())

        def step(x):
            y = op.rmatvec(x)
            return y / y.sum()

        res = iterate_fixed_point(
            op.shape[0], step, lambda x: operator_residual(op, x),
            method="power", tol=0.0, max_iter=3,
        )
        assert not res.converged
        assert res.iterations == 3


class TestAugmentedSystemSurgery:
    """The CSR row-splice must equal the old tolil row overwrite."""

    def _reference(self, P, row):
        n = P.shape[0]
        A = (sp.identity(n, format="csr") - P.T.tocsr()).tolil()
        A[row] = np.ones(n)
        return A.tocsc()

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_matches_tolil_reference(self, seed):
        P = chain(n=40, seed=seed).P
        ours = augmented_system(P)
        ref = self._reference(P, P.shape[0] - 1)
        assert (ours != ref).nnz == 0

    def test_structure(self):
        P = chain(n=17, seed=2).P
        A = augmented_system(P).tocsr()
        last = A[-1].toarray().ravel()
        np.testing.assert_allclose(last, 1.0)
        assert A.shape == P.shape

    def test_dense_last_row_even_when_sparse_before(self):
        # A chain whose (I - P^T) last row had few nonzeros: the splice
        # must still produce the full ones row without disturbing others.
        P = sp.identity(6, format="csr")
        A = augmented_system(P).tocsr()
        np.testing.assert_allclose(A[-1].toarray().ravel(), 1.0)
        np.testing.assert_allclose(
            A[:-1].toarray(), np.zeros((5, 6)), atol=1e-15
        )
