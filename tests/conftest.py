"""Repo-wide test configuration: deterministic hypothesis runs.

Every numpy RNG in the suite is explicitly seeded, which leaves
hypothesis's example generation as the only source of run-to-run
variation -- exactly the kind of nondeterminism that lets a marginal
tolerance pass on one run and fail the next.  The ``repro`` profile
derandomizes example generation (examples are derived from the test
function, stable across runs and machines) and disables the wall-clock
deadline, which is noise on shared CI runners.

Opt out locally with ``--hypothesis-profile=default`` to hunt for new
counterexamples; CI and the default run stay reproducible.
"""

from hypothesis import settings

settings.register_profile("repro", derandomize=True, deadline=None)
settings.load_profile("repro")
