"""Unit and property tests for repro.noise.distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise import DiscreteDistribution


def finite_floats(lo=-100.0, hi=100.0):
    return st.floats(min_value=lo, max_value=hi, allow_nan=False, allow_infinity=False)


@st.composite
def distributions(draw, max_atoms=8):
    n = draw(st.integers(min_value=1, max_value=max_atoms))
    values = draw(
        st.lists(finite_floats(), min_size=n, max_size=n, unique=True)
    )
    weights = draw(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=n, max_size=n)
    )
    total = sum(weights)
    return DiscreteDistribution(values, [w / total for w in weights])


class TestConstruction:
    def test_basic(self):
        d = DiscreteDistribution([1.0, -1.0], [0.25, 0.75])
        assert d.n_atoms == 2
        assert d.values[0] == -1.0  # sorted
        assert d.probs[0] == 0.75

    def test_probs_renormalized(self):
        d = DiscreteDistribution([0.0, 1.0], [0.5000001, 0.5])
        assert math.isclose(d.probs.sum(), 1.0, abs_tol=1e-15)

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            DiscreteDistribution([0.0, 1.0], [0.5, 0.6])

    def test_rejects_negative_probs(self):
        with pytest.raises(ValueError, match="non-negative"):
            DiscreteDistribution([0.0, 1.0], [-0.2, 1.2])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([], [])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="same length"):
            DiscreteDistribution([0.0, 1.0], [1.0])

    def test_rejects_nonfinite_values(self):
        with pytest.raises(ValueError, match="finite"):
            DiscreteDistribution([np.inf], [1.0])

    def test_merges_duplicate_values(self):
        d = DiscreteDistribution([1.0, 1.0, 2.0], [0.2, 0.3, 0.5])
        assert d.n_atoms == 2
        assert math.isclose(d.pmf(1.0), 0.5)

    def test_drops_zero_probability_atoms(self):
        d = DiscreteDistribution([0.0, 5.0], [1.0, 0.0])
        assert d.n_atoms == 1

    def test_values_are_readonly(self):
        d = DiscreteDistribution.delta(0.0)
        with pytest.raises(ValueError):
            d.values[0] = 3.0

    def test_table_constructor(self):
        d = DiscreteDistribution.table([(0.0, 0.5), (1.0, 0.5)])
        assert d.n_atoms == 2

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(DiscreteDistribution.delta(0.0))

    def test_equality(self):
        a = DiscreteDistribution([0.0, 1.0], [0.5, 0.5])
        b = DiscreteDistribution([1.0, 0.0], [0.5, 0.5])
        assert a == b
        assert a != DiscreteDistribution.delta(0.0)


class TestMomentsAndProbabilities:
    def test_mean_var(self):
        d = DiscreteDistribution([0.0, 2.0], [0.5, 0.5])
        assert math.isclose(d.mean(), 1.0)
        assert math.isclose(d.var(), 1.0)
        assert math.isclose(d.std(), 1.0)

    def test_moment(self):
        d = DiscreteDistribution([1.0, 3.0], [0.5, 0.5])
        assert math.isclose(d.moment(2), 5.0)
        assert math.isclose(d.moment(2, central=True), 1.0)

    def test_pmf(self):
        d = DiscreteDistribution([0.0, 1.0], [0.25, 0.75])
        assert d.pmf(1.0) == 0.75
        assert d.pmf(0.5) == 0.0

    def test_cdf(self):
        d = DiscreteDistribution([0.0, 1.0, 2.0], [0.2, 0.3, 0.5])
        assert math.isclose(d.cdf(-1.0), 0.0)
        assert math.isclose(d.cdf(1.0), 0.5)
        assert math.isclose(d.cdf(10.0), 1.0)

    def test_tail_prob(self):
        d = DiscreteDistribution([-2.0, 0.0, 2.0], [0.25, 0.5, 0.25])
        assert math.isclose(d.tail_prob(1.0), 0.25)
        assert math.isclose(d.tail_prob(1.0, two_sided=True), 0.5)

    def test_expectation(self):
        d = DiscreteDistribution([-1.0, 1.0], [0.5, 0.5])
        assert math.isclose(d.expectation(np.abs), 1.0)

    @given(distributions())
    @settings(max_examples=50, deadline=None)
    def test_variance_nonnegative(self, d):
        assert d.var() >= -1e-9

    @given(distributions())
    @settings(max_examples=50, deadline=None)
    def test_cdf_monotone(self, d):
        xs = np.linspace(d.support[0] - 1, d.support[1] + 1, 13)
        cdfs = [d.cdf(x) for x in xs]
        assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))


class TestAlgebra:
    def test_shift(self):
        d = DiscreteDistribution([0.0, 1.0], [0.5, 0.5]).shift(2.0)
        assert math.isclose(d.mean(), 2.5)

    def test_scale(self):
        d = DiscreteDistribution([0.0, 1.0], [0.5, 0.5]).scale(-2.0)
        assert math.isclose(d.mean(), -1.0)
        assert d.values[0] == -2.0

    def test_scale_zero_gives_delta(self):
        d = DiscreteDistribution([0.0, 1.0], [0.5, 0.5]).scale(0.0)
        assert d == DiscreteDistribution.delta(0.0)

    def test_convolution_means_add(self):
        a = DiscreteDistribution([0.0, 1.0], [0.5, 0.5])
        b = DiscreteDistribution([0.0, 2.0], [0.25, 0.75])
        c = a.convolve(b)
        assert math.isclose(c.mean(), a.mean() + b.mean())
        assert math.isclose(c.var(), a.var() + b.var())

    def test_convolve_with_delta_is_shift(self):
        a = DiscreteDistribution([0.0, 1.0], [0.5, 0.5])
        assert a.convolve(DiscreteDistribution.delta(3.0)) == a.shift(3.0)

    def test_operator_sugar(self):
        a = DiscreteDistribution([0.0, 1.0], [0.5, 0.5])
        assert (a + 1.0) == a.shift(1.0)
        assert (2.0 * a) == a.scale(2.0)
        assert (-a) == a.negate()
        assert (a + a) == a.convolve(a)

    def test_convolve_type_error(self):
        with pytest.raises(TypeError):
            DiscreteDistribution.delta(0.0).convolve("nope")

    def test_mixture(self):
        a = DiscreteDistribution.delta(0.0)
        b = DiscreteDistribution.delta(1.0)
        m = a.mixture(b, 0.25)
        assert math.isclose(m.pmf(0.0), 0.25)
        assert math.isclose(m.pmf(1.0), 0.75)

    def test_mixture_weight_validation(self):
        a = DiscreteDistribution.delta(0.0)
        with pytest.raises(ValueError):
            a.mixture(a, 1.5)

    @given(distributions(max_atoms=5), distributions(max_atoms=5))
    @settings(max_examples=30, deadline=None)
    def test_convolution_moment_additivity(self, a, b):
        c = a.convolve(b)
        assert math.isclose(c.mean(), a.mean() + b.mean(), abs_tol=1e-6, rel_tol=1e-6)
        assert math.isclose(c.var(), a.var() + b.var(), abs_tol=1e-5, rel_tol=1e-5)

    @given(distributions(max_atoms=5))
    @settings(max_examples=30, deadline=None)
    def test_shift_preserves_var(self, d):
        assert math.isclose(d.shift(3.25).var(), d.var(), abs_tol=1e-6, rel_tol=1e-4)


class TestQuantize:
    def test_nearest(self):
        d = DiscreteDistribution([0.13, 0.38], [0.5, 0.5]).quantize(0.25)
        assert list(d.values) == [0.25, 0.5]

    def test_floor_ceil(self):
        d = DiscreteDistribution([0.12], [1.0])
        assert d.quantize(0.25, mode="floor").values[0] == 0.0
        assert d.quantize(0.25, mode="ceil").values[0] == 0.25

    def test_split_preserves_mean(self):
        d = DiscreteDistribution([0.1, 0.77], [0.3, 0.7])
        q = d.quantize(0.25, mode="split")
        assert math.isclose(q.mean(), d.mean(), abs_tol=1e-12)
        for v in q.values:
            assert math.isclose(v / 0.25, round(v / 0.25), abs_tol=1e-9)

    def test_bad_mode(self):
        with pytest.raises(ValueError, match="unknown quantization"):
            DiscreteDistribution.delta(0.0).quantize(0.1, mode="bogus")

    def test_bad_step(self):
        with pytest.raises(ValueError, match="positive"):
            DiscreteDistribution.delta(0.0).quantize(0.0)

    @given(distributions(max_atoms=6), st.floats(min_value=0.01, max_value=2.0))
    @settings(max_examples=30, deadline=None)
    def test_quantize_total_mass(self, d, step):
        for mode in ("nearest", "floor", "ceil", "split"):
            q = d.quantize(step, mode=mode)
            assert math.isclose(q.probs.sum(), 1.0, abs_tol=1e-9)


class TestTruncate:
    def test_truncate(self):
        d = DiscreteDistribution([-1.0, 0.0, 1.0], [0.25, 0.5, 0.25])
        t = d.truncate(-0.5, 1.5)
        assert t.n_atoms == 2
        assert math.isclose(t.probs.sum(), 1.0)
        assert math.isclose(t.pmf(0.0), 2.0 / 3.0)

    def test_truncate_empty_raises(self):
        d = DiscreteDistribution.delta(0.0)
        with pytest.raises(ValueError, match="all probability"):
            d.truncate(1.0, 2.0)


class TestConstructors:
    def test_delta(self):
        d = DiscreteDistribution.delta(3.0)
        assert d.n_atoms == 1
        assert d.mean() == 3.0
        assert d.var() == 0.0

    def test_uniform(self):
        d = DiscreteDistribution.uniform([0.0, 1.0, 2.0])
        assert math.isclose(d.mean(), 1.0)
        assert all(math.isclose(p, 1 / 3) for p in d.probs)

    def test_uniform_empty_raises(self):
        with pytest.raises(ValueError):
            DiscreteDistribution.uniform([])

    def test_bernoulli(self):
        d = DiscreteDistribution.bernoulli(0.3)
        assert math.isclose(d.pmf(1.0), 0.3)

    def test_bernoulli_validation(self):
        with pytest.raises(ValueError):
            DiscreteDistribution.bernoulli(1.5)

    def test_gaussian_moments(self):
        d = DiscreteDistribution.gaussian(std=0.1, n_atoms=41, n_sigmas=6.0)
        assert math.isclose(d.mean(), 0.0, abs_tol=1e-12)
        assert math.isclose(d.std(), 0.1, rel_tol=0.02)
        assert math.isclose(d.probs.sum(), 1.0, abs_tol=1e-12)

    def test_gaussian_zero_std_is_delta(self):
        assert DiscreteDistribution.gaussian(std=0.0, mean=2.0) == DiscreteDistribution.delta(2.0)

    def test_gaussian_symmetry(self):
        d = DiscreteDistribution.gaussian(std=1.0, n_atoms=11)
        np.testing.assert_allclose(d.probs, d.probs[::-1], atol=1e-14)

    def test_gaussian_validation(self):
        with pytest.raises(ValueError):
            DiscreteDistribution.gaussian(std=-1.0)
        with pytest.raises(ValueError):
            DiscreteDistribution.gaussian(std=1.0, n_atoms=0)

    def test_from_samples(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(2.0, 0.5, size=20000)
        d = DiscreteDistribution.from_samples(samples, bins=50)
        assert math.isclose(d.mean(), 2.0, abs_tol=0.05)
        assert math.isclose(d.std(), 0.5, abs_tol=0.05)

    def test_from_samples_empty(self):
        with pytest.raises(ValueError):
            DiscreteDistribution.from_samples([])


class TestSampling:
    def test_sample_matches_distribution(self):
        rng = np.random.default_rng(42)
        d = DiscreteDistribution([0.0, 1.0], [0.25, 0.75])
        s = d.sample(rng, size=20000)
        assert math.isclose(s.mean(), 0.75, abs_tol=0.02)

    def test_sample_scalar(self):
        rng = np.random.default_rng(0)
        v = DiscreteDistribution.delta(5.0).sample(rng)
        assert float(v) == 5.0
