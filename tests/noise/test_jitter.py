"""Tests for the jitter / drift models in repro.noise.jitter."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise import (
    DiscreteDistribution,
    dual_dirac_jitter,
    eye_opening_noise,
    sinusoidal_jitter,
    sonet_drift_noise,
)
from repro.noise.jitter import random_walk_increment


class TestEyeOpeningNoise:
    def test_is_zero_mean(self):
        d = eye_opening_noise(0.02, n_atoms=15)
        assert math.isclose(d.mean(), 0.0, abs_tol=1e-12)

    def test_std_matches(self):
        d = eye_opening_noise(0.05, n_atoms=41, n_sigmas=6.0)
        assert math.isclose(d.std(), 0.05, rel_tol=0.02)

    def test_bounded_support(self):
        d = eye_opening_noise(0.01, n_atoms=11, n_sigmas=4.0)
        lo, hi = d.support
        assert math.isclose(hi, 0.04, abs_tol=1e-12)
        assert math.isclose(lo, -0.04, abs_tol=1e-12)


class TestSonetDrift:
    def test_mean_matches(self):
        d = sonet_drift_noise(max_ui=0.01, mean_ui=0.002, grid_step=0.005)
        assert math.isclose(d.mean(), 0.002, abs_tol=1e-12)

    def test_atoms_on_grid(self):
        step = 0.004
        d = sonet_drift_noise(max_ui=0.01, mean_ui=0.001, grid_step=step)
        for v in d.values:
            assert math.isclose(v / step, round(v / step), abs_tol=1e-9)

    def test_bounded(self):
        d = sonet_drift_noise(max_ui=0.01, mean_ui=0.0, grid_step=0.01)
        lo, hi = d.support
        assert hi <= 0.01 + 1e-12
        assert lo >= -0.01 - 1e-12

    def test_zero_mean_is_symmetric(self):
        d = sonet_drift_noise(max_ui=0.02, mean_ui=0.0, grid_step=0.01)
        assert math.isclose(d.pmf(d.support[0]), d.pmf(d.support[1]), abs_tol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_ui"):
            sonet_drift_noise(max_ui=0.0, mean_ui=0.0, grid_step=0.01)
        with pytest.raises(ValueError, match="grid_step"):
            sonet_drift_noise(max_ui=0.01, mean_ui=0.0, grid_step=0.0)
        with pytest.raises(ValueError, match="mean_ui"):
            sonet_drift_noise(max_ui=0.01, mean_ui=0.5, grid_step=0.01)
        with pytest.raises(ValueError, match="skew"):
            sonet_drift_noise(max_ui=0.01, mean_ui=0.0, grid_step=0.01, skew=0.9)

    @given(
        st.floats(min_value=0.001, max_value=0.1),
        st.floats(min_value=-1.0, max_value=1.0),
        st.floats(min_value=0.05, max_value=0.45),
    )
    @settings(max_examples=50, deadline=None)
    def test_mean_always_honored(self, max_ui, mean_frac, skew):
        grid = max_ui / 2
        mean_ui = mean_frac * max_ui
        d = sonet_drift_noise(max_ui=max_ui, mean_ui=mean_ui, grid_step=grid, skew=skew)
        assert math.isclose(d.mean(), mean_ui, abs_tol=1e-9)


class TestSinusoidalJitter:
    def test_zero_amplitude(self):
        assert sinusoidal_jitter(0.0) == DiscreteDistribution.delta(0.0)

    def test_mean_zero(self):
        d = sinusoidal_jitter(0.1, n_atoms=32)
        assert math.isclose(d.mean(), 0.0, abs_tol=1e-12)

    def test_rms_is_amplitude_over_sqrt2(self):
        d = sinusoidal_jitter(0.2, n_atoms=512)
        assert math.isclose(d.std(), 0.2 / math.sqrt(2.0), rel_tol=0.01)

    def test_edges_heavier_than_center(self):
        # Arcsine density piles up at the extremes.
        d = sinusoidal_jitter(1.0, n_atoms=16)
        assert d.probs[0] > d.probs[len(d.probs) // 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            sinusoidal_jitter(-1.0)
        with pytest.raises(ValueError):
            sinusoidal_jitter(1.0, n_atoms=0)


class TestDualDirac:
    def test_atoms(self):
        d = dual_dirac_jitter(0.2)
        assert list(d.values) == [-0.1, 0.1]
        assert math.isclose(d.mean(), 0.0, abs_tol=1e-15)

    def test_zero_is_delta(self):
        assert dual_dirac_jitter(0.0) == DiscreteDistribution.delta(0.0)

    def test_asymmetric_weights(self):
        d = dual_dirac_jitter(0.2, p=0.75)
        assert math.isclose(d.pmf(0.1), 0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            dual_dirac_jitter(-0.1)


class TestRandomWalkIncrement:
    def test_symmetric_zero_mean(self):
        d = random_walk_increment(0.01, p_step=0.5)
        assert math.isclose(d.mean(), 0.0, abs_tol=1e-15)
        assert math.isclose(d.pmf(0.0), 0.5)

    def test_drift(self):
        d = random_walk_increment(0.01, p_step=0.5, drift_ui=0.002)
        assert math.isclose(d.mean(), 0.002, abs_tol=1e-12)

    def test_variance(self):
        d = random_walk_increment(0.01, p_step=1.0)
        assert math.isclose(d.var(), 0.01 ** 2, rel_tol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_walk_increment(-0.01, 0.5)
        with pytest.raises(ValueError):
            random_walk_increment(0.01, 1.5)

    def test_sampled_random_walk_variance_grows_linearly(self):
        rng = np.random.default_rng(1)
        d = random_walk_increment(1.0, p_step=0.5)
        steps = d.sample(rng, size=(500, 64))
        walk = np.cumsum(steps, axis=1)
        v16 = walk[:, 15].var()
        v64 = walk[:, 63].var()
        assert 3.0 < v64 / v16 < 5.0
