"""Tests for the total-jitter budgeting helpers."""

import math

import pytest

from repro.noise import (
    JitterBudget,
    q_factor,
    rj_budget_from_tj,
    total_jitter,
)


class TestQFactor:
    def test_classic_value_at_1e12(self):
        # the folklore "14 sigma" constant: 2 * Q(1e-12) ~= 14.07
        assert 2.0 * q_factor(1e-12) == pytest.approx(14.069, abs=0.01)

    def test_monotone_in_ber(self):
        assert q_factor(1e-15) > q_factor(1e-12) > q_factor(1e-9)

    def test_tail_identity(self):
        # P(|X| > Q sigma) == 2 * ber for a standard Gaussian
        ber = 1e-6
        Q = q_factor(ber)
        tail = 0.5 * math.erfc(Q / math.sqrt(2.0))
        assert tail == pytest.approx(ber, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            q_factor(0.0)
        with pytest.raises(ValueError):
            q_factor(0.6)


class TestTotalJitter:
    def test_composition(self):
        tj = total_jitter(dj_pp_ui=0.1, rj_rms_ui=0.01, ber=1e-12)
        assert tj == pytest.approx(0.1 + 14.069 * 0.01, abs=1e-3)

    def test_round_trip(self):
        rj = rj_budget_from_tj(tj_pp_ui=0.3, dj_pp_ui=0.1, ber=1e-12)
        assert total_jitter(0.1, rj, ber=1e-12) == pytest.approx(0.3, rel=1e-12)

    def test_dj_exceeding_budget_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            rj_budget_from_tj(tj_pp_ui=0.1, dj_pp_ui=0.2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            total_jitter(-0.1, 0.01)


class TestJitterBudget:
    def test_eye_opening(self):
        b = JitterBudget(dj_pp_ui=0.2, rj_rms_ui=0.02, ber=1e-12)
        assert b.eye_opening_ui == pytest.approx(1.0 - b.tj_pp_ui)
        assert "TJ" in b.describe()

    def test_nw_distribution_moments(self):
        b = JitterBudget(dj_pp_ui=0.1, rj_rms_ui=0.02)
        d = b.nw_distribution(n_atoms=41, n_sigmas=6.0)
        assert d.mean() == pytest.approx(0.0, abs=1e-12)
        # var = RJ^2 + (DJ/2)^2 for dual-Dirac DJ
        expected = 0.02**2 + 0.05**2
        assert d.var() == pytest.approx(expected, rel=0.02)

    def test_budget_feeds_analyzer(self):
        from repro import CDRSpec, analyze_cdr

        budget = JitterBudget(dj_pp_ui=0.05, rj_rms_ui=0.02)
        spec = CDRSpec(
            n_phase_points=64, n_clock_phases=16, counter_length=2,
            max_run_length=2,
            nw_override=budget.nw_distribution(n_atoms=11),
        )
        analysis = analyze_cdr(spec, solver="direct")
        assert 0.0 <= analysis.ber <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            JitterBudget(dj_pp_ui=-0.1, rj_rms_ui=0.02)
        with pytest.raises(ValueError):
            JitterBudget(dj_pp_ui=0.1, rj_rms_ui=0.02, ber=0.7)
