"""Kernel tier registry: selection, forcing, failure modes."""

import numpy as np
import pytest

from repro import kernels
from repro.kernels import (
    KERNEL_ENV,
    KERNEL_TIERS,
    active_tier,
    available_tiers,
    get_kernel,
    tier_availability,
    use_tier,
)

pytestmark = [pytest.mark.operator]


class TestRegistry:
    def test_numpy_tier_always_available(self):
        assert "numpy" in available_tiers()

    def test_availability_reasons(self):
        avail = tier_availability()
        assert set(avail) == set(KERNEL_TIERS)
        assert avail["numpy"] is None
        for tier in KERNEL_TIERS:
            if tier in available_tiers():
                assert avail[tier] is None
            else:
                assert isinstance(avail[tier], str) and avail[tier]

    def test_auto_prefers_compiled_tiers(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "auto")
        assert get_kernel().name == available_tiers()[0]

    def test_unknown_tier_raises(self):
        with pytest.raises(RuntimeError, match="unknown kernel tier"):
            get_kernel("turbo")

    def test_forced_unavailable_tier_raises(self):
        unavailable = [t for t in KERNEL_TIERS if t not in available_tiers()]
        if not unavailable:
            pytest.skip("every tier is available in this environment")
        with pytest.raises(RuntimeError, match="unavailable"):
            get_kernel(unavailable[0])

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "numpy")
        assert get_kernel().name == "numpy"
        monkeypatch.setenv(KERNEL_ENV, "auto")
        assert get_kernel().name == available_tiers()[0]
        monkeypatch.setenv(KERNEL_ENV, "no-such-tier")
        with pytest.raises(RuntimeError, match="unknown kernel tier"):
            get_kernel()

    def test_use_tier_overrides_and_restores(self):
        before = active_tier()
        with use_tier("numpy") as kernel:
            assert kernel.name == "numpy"
            assert active_tier() == "numpy"
        assert active_tier() == before

    def test_operators_bind_overridden_tier(self):
        from repro.scenarios.operator import BranchSumOperator

        n = 6
        terms = [(np.full(n, 1.0), np.arange(n))]
        with use_tier("numpy"):
            op = BranchSumOperator(n, terms)
        assert op.kernel_tier == "numpy"

    def test_module_exports_plans(self):
        assert kernels.RollPlan is not None
        assert kernels.BranchPlan is not None


class TestApplyValidators:
    def test_vector_shape_error(self):
        from repro.kernels import as_apply_vector

        with pytest.raises(ValueError, match=r"vector must have shape \(5,\)"):
            as_apply_vector(np.ones(4), 5)

    def test_block_shape_error(self):
        from repro.kernels import as_apply_block

        with pytest.raises(ValueError, match=r"block must have shape \(5, k\)"):
            as_apply_block(np.ones((4, 2)), 5)
