"""The kernel equivalence battery: every tier bit-identical to CSR.

The contract the kernel layer makes (and the CI ``kernels`` job runs
under both numba and forced-numpy): for every registered scenario and
every available tier, ``matvec`` / ``rmatvec`` are *bitwise* equal to
applying the operator's assembled CSR matrix (respectively its
transpose), blocked applies are bitwise equal to looped single-vector
applies, and matvec/rmatvec are adjoint.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import available_tiers, use_tier
from repro.markov.linop import as_operator, ensure_csr, unwrap_operator
from repro.scenarios.registry import scenario_names, scenario_table

pytestmark = [pytest.mark.operator]

TIERS = available_tiers()


def scenario_operators(tier):
    """(label, operator) for every scenario's matrix-free realization."""
    with use_tier(tier):
        for scenario in scenario_table():
            if "matrix-free" not in scenario.backends:
                continue
            model = scenario.build(
                scenario.params_for("fast"), backend="matrix-free"
            )
            yield scenario.name, as_operator(model.chain)


@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize("name", scenario_names())
class TestScenarioBitIdentity:
    def test_applies_match_csr_bitwise(self, tier, name):
        ops = dict(scenario_operators(tier))
        if name not in ops:
            pytest.skip(f"scenario {name!r} has no matrix-free backend")
        op = ops[name]
        P = ensure_csr(unwrap_operator(op))
        PT = P.T.tocsr()
        rng = np.random.default_rng(42)
        for _ in range(3):
            x = rng.random(op.shape[0])
            assert np.array_equal(op.rmatvec(x), PT @ x)
            assert np.array_equal(op.matvec(x), P @ x)

    def test_blocked_matches_looped_bitwise(self, tier, name):
        ops = dict(scenario_operators(tier))
        if name not in ops:
            pytest.skip(f"scenario {name!r} has no matrix-free backend")
        op = ops[name]
        rng = np.random.default_rng(7)
        X = np.ascontiguousarray(rng.random((op.shape[0], 4)))
        R = op.rmatmat(X)
        V = op.matmat(X)
        for j in range(X.shape[1]):
            col = np.ascontiguousarray(X[:, j])
            assert np.array_equal(R[:, j], op.rmatvec(col))
            assert np.array_equal(V[:, j], op.matvec(col))


def cdr_operator(tier, M=48, counter=3):
    from repro.cdr import CDRTransitionOperator, PhaseGrid
    from repro.noise import DiscreteDistribution, eye_opening_noise

    grid = PhaseGrid(M)
    with use_tier(tier):
        return CDRTransitionOperator(
            grid=grid,
            nw=eye_opening_noise(0.06, n_atoms=7),
            nr=DiscreteDistribution(
                [-grid.step, 0.0, grid.step], [0.2, 0.5, 0.3]
            ),
            counter_length=counter,
            phase_step_units=2,
            max_run_length=2,
        )


@pytest.mark.parametrize("tier", TIERS)
class TestCDRBitIdentity:
    def test_applies_match_csr_bitwise(self, tier):
        op = cdr_operator(tier)
        assert op.kernel_tier == tier
        P = op.to_csr()
        PT = P.T.tocsr()
        rng = np.random.default_rng(0)
        for _ in range(3):
            x = rng.random(op.n)
            assert np.array_equal(op.rmatvec(x), PT @ x)
            assert np.array_equal(op.matvec(x), P @ x)

    def test_blocked_matches_looped_bitwise(self, tier):
        op = cdr_operator(tier)
        rng = np.random.default_rng(1)
        X = np.ascontiguousarray(rng.random((op.n, 5)))
        R = op.rmatmat(X)
        V = op.matmat(X)
        for j in range(X.shape[1]):
            col = np.ascontiguousarray(X[:, j])
            assert np.array_equal(R[:, j], op.rmatvec(col))
            assert np.array_equal(V[:, j], op.matvec(col))

    def test_saturating_counter_collisions(self, tier):
        # counter_length=1 makes distinct decisions collide on the same
        # (src, dst, shift): exercises the merged-dense-row path.
        op = cdr_operator(tier, M=32, counter=1)
        P = op.to_csr()
        PT = P.T.tocsr()
        x = np.random.default_rng(2).random(op.n)
        assert np.array_equal(op.rmatvec(x), PT @ x)
        assert np.array_equal(op.matvec(x), P @ x)

    def test_tiers_mutually_bit_identical(self, tier):
        base = cdr_operator(TIERS[0])
        other = cdr_operator(tier)
        x = np.random.default_rng(3).random(base.n)
        assert np.array_equal(base.rmatvec(x), other.rmatvec(x))
        assert np.array_equal(base.matvec(x), other.matvec(x))


class TestAdjointProperty:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        scale=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=25)
    def test_matvec_rmatvec_adjoint(self, seed, scale):
        op = cdr_operator(TIERS[0], M=24, counter=2)
        rng = np.random.default_rng(seed)
        v = scale * rng.standard_normal(op.n)
        x = rng.standard_normal(op.n)
        lhs = float(np.dot(op.matvec(v), x))
        rhs = float(np.dot(v, op.rmatvec(x)))
        assert lhs == pytest.approx(rhs, rel=1e-12, abs=1e-12)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15)
    def test_branch_operator_adjoint(self, seed):
        from repro.scenarios.operator import BranchSumOperator

        rng = np.random.default_rng(seed)
        n = 40
        raw = rng.uniform(0.05, 1.0, (3, n))
        raw /= raw.sum(axis=0, keepdims=True)
        op = BranchSumOperator(
            n, [(raw[b], rng.integers(0, n, n)) for b in range(3)]
        )
        v = rng.standard_normal(n)
        x = rng.standard_normal(n)
        assert float(np.dot(op.matvec(v), x)) == pytest.approx(
            float(np.dot(v, op.rmatvec(x))), rel=1e-12, abs=1e-12
        )


class TestStochasticity:
    @pytest.mark.parametrize("tier", TIERS)
    def test_row_stochastic_via_actual_matvec(self, tier):
        op = cdr_operator(tier)
        assert op.stochasticity_defect() < 1e-12
        # row_sums answers from structure (cached ones), the defect from
        # an actual kernel apply; both must tell the same story.
        assert np.all(op.row_sums() == 1.0)
