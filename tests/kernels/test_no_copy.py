"""Hot-path regression tests: zero-copy applies and cached structural queries.

The bugfix sweep of ROADMAP item 1: ``np.asarray(..., dtype=float)`` on
every apply used to copy caller buffers inside solver loops, ``row_sums``
ran a full matvec per call and ``diagonal`` rebuilt its scratch array per
call.  These tests pin the fixed behavior.
"""

import tracemalloc

import numpy as np
import pytest

from repro.kernels import as_apply_block, as_apply_vector

pytestmark = [pytest.mark.operator]


def small_cdr_operator():
    from repro.cdr import CDRTransitionOperator, PhaseGrid
    from repro.noise import DiscreteDistribution, eye_opening_noise

    grid = PhaseGrid(32)
    return CDRTransitionOperator(
        grid=grid,
        nw=eye_opening_noise(0.06, n_atoms=7),
        nr=DiscreteDistribution([-grid.step, 0.0, grid.step], [0.2, 0.5, 0.3]),
        counter_length=3,
        phase_step_units=2,
        max_run_length=2,
    )


class TestZeroCopyValidators:
    def test_float64_contiguous_vector_passes_through(self):
        x = np.random.default_rng(0).random(100)
        out = as_apply_vector(x, 100)
        assert out is x
        assert np.shares_memory(out, x)

    def test_float64_contiguous_block_passes_through(self):
        X = np.ascontiguousarray(np.random.default_rng(1).random((50, 4)))
        out = as_apply_block(X, 50)
        assert out is X
        assert np.shares_memory(out, X)

    def test_other_dtypes_converted_once(self):
        x32 = np.ones(10, dtype=np.float32)
        out = as_apply_vector(x32, 10)
        assert out.dtype == np.float64
        assert not np.shares_memory(out, x32)

    def test_fortran_order_block_converted(self):
        X = np.asfortranarray(np.random.default_rng(2).random((20, 3)))
        out = as_apply_block(X, 20)
        assert out.flags.c_contiguous
        assert not np.shares_memory(out, X)

    def test_lists_accepted(self):
        out = as_apply_vector([1.0, 2.0, 3.0], 3)
        assert out.dtype == np.float64

    def test_apply_does_not_copy_input(self):
        # The end-to-end regression: an aligned caller buffer flows into
        # the kernel without an intermediate allocation of its own size.
        op = small_cdr_operator()
        x = np.random.default_rng(3).random(op.n)
        op.rmatvec(x)  # warm caches / lazy imports
        vec_bytes = x.nbytes
        tracemalloc.start()
        op.rmatvec(x)
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        allocs = sum(s.size for s in snapshot.statistics("lineno"))
        # One output vector (plus small bookkeeping), NOT two+ vectors:
        # the old np.asarray copy would add another vec_bytes here.
        assert allocs < 1.8 * vec_bytes


class TestCachedStructuralQueries:
    def test_cdr_row_sums_cached_and_readonly(self):
        op = small_cdr_operator()
        r1 = op.row_sums()
        r2 = op.row_sums()
        assert r1 is r2
        assert not r1.flags.writeable
        assert np.all(r1 == 1.0)
        with pytest.raises((ValueError, RuntimeError)):
            r1[0] = 2.0

    def test_cdr_diagonal_cached_and_readonly(self):
        op = small_cdr_operator()
        d1 = op.diagonal()
        assert d1 is op.diagonal()
        assert not d1.flags.writeable
        assert np.allclose(d1, op.to_csr().diagonal(), atol=1e-15)

    def test_row_sums_no_longer_runs_matvec(self):
        # row_sums answers structurally; the numerical check moved to
        # stochasticity_defect.  Count kernel applies to prove it.
        op = small_cdr_operator()
        calls = {"n": 0}
        original = op._kernel.roll_apply

        class CountingKernel:
            name = op._kernel.name

            @staticmethod
            def roll_apply(*args, **kwargs):
                calls["n"] += 1
                return original(*args, **kwargs)

        op._kernel = CountingKernel
        op.row_sums()
        op.row_sums()
        assert calls["n"] == 0
        assert op.stochasticity_defect() < 1e-12
        assert calls["n"] == 1

    def test_branch_row_sums_and_diagonal_cached(self):
        from repro.scenarios.operator import BranchSumOperator

        n = 12
        op = BranchSumOperator(n, [(np.full(n, 1.0), np.arange(n))])
        assert op.row_sums() is op.row_sums()
        assert not op.row_sums().flags.writeable
        assert op.diagonal() is op.diagonal()
        assert not op.diagonal().flags.writeable

    def test_kronecker_backend_caches(self):
        from repro.cdr.backends import KroneckerCDROperator

        op = KroneckerCDROperator(small_cdr_operator())
        assert op.diagonal() is op.diagonal()
        assert op.row_sums() is op.row_sums()
        assert not op.diagonal().flags.writeable

    def test_kronecker_descriptor_transposes_cached(self):
        from repro.fsm.kronecker import synchronous_product

        rng = np.random.default_rng(4)
        P1 = rng.random((4, 4))
        P1 /= P1.sum(axis=1, keepdims=True)
        P2 = rng.random((3, 3))
        P2 /= P2.sum(axis=1, keepdims=True)
        desc = synchronous_product([P1, P2])
        x = rng.random(12)
        desc.rmatvec(x)
        cached = desc._termsT
        assert cached is not None
        desc.rmatvec(x)
        assert desc._termsT is cached  # reused, not rebuilt
        desc.add_term([P1, P2], coefficient=0.0)
        assert desc._termsT is None  # invalidated by structural change
