"""RollPlan / BranchPlan compilation: coalescing, support trim, CSR parity."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.kernels import BranchPlan, CSRArrays, RollPlan

pytestmark = [pytest.mark.operator]


def legacy_csr(terms, n_blocks, M):
    """The pre-plan to_csr construction, kept as the reference."""
    n = n_blocks * M
    m_idx = np.arange(M)
    rows, cols, vals = [], [], []
    for src, dst, shift, q_vec, scalar in terms:
        rows.append(src * M + m_idx)
        cols.append(dst * M + (m_idx + shift) % M)
        vals.append(np.full(M, scalar) if q_vec is None else scalar * q_vec)
    P = sp.coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    ).tocsr()
    P.sum_duplicates()
    P.eliminate_zeros()
    return P


class TestRollPlanCoalescing:
    def test_same_qvec_duplicates_sum_scalars(self):
        M = 8
        q = np.full(M, 0.5)
        terms = [
            (0, 1, 2, q, 0.25),
            (0, 1, 2, q, 0.5),  # same (src, dst, shift, q_vec)
            (1, 0, -2, None, 1.0),
        ]
        plan = RollPlan(terms, n_blocks=2, M=M)
        assert plan.n_input_terms == 3
        assert plan.n_terms == 2
        k = int(np.flatnonzero((plan.src == 0) & (plan.dst == 1))[0])
        assert plan.scale[k] == 0.75
        ref = legacy_csr(terms, 2, M)
        got = plan.to_csr()
        assert (ref != got).nnz == 0
        assert np.array_equal(ref.data, got.data)

    def test_negative_shift_normalized_mod_M(self):
        M = 8
        terms = [(0, 0, -3, None, 0.5), (0, 0, M - 3, None, 0.5)]
        plan = RollPlan(terms, n_blocks=1, M=M)
        assert plan.n_terms == 1  # -3 == 5 (mod 8): one coalesced term
        assert plan.scale[0] == 1.0

    def test_distinct_qvecs_colliding_merge_to_dense_row(self):
        # Two decisions landing on the same (src, dst, shift) -- the
        # saturating-counter case.  The plan must materialize one merged
        # weight row, and its CSR must match the legacy superposition.
        M = 8
        qa = np.zeros(M)
        qa[:4] = 0.5
        qb = np.zeros(M)
        qb[2:] = 0.5
        terms = [(0, 0, 1, qa, 0.4), (0, 0, 1, qb, 0.6)]
        plan = RollPlan(terms, n_blocks=1, M=M)
        assert plan.n_terms == 1
        assert plan.scale[0] == 1.0  # merged rows carry scale 1
        merged = plan.q[plan.qrow[0]]
        assert np.array_equal(merged, 0.4 * qa + 0.6 * qb)
        ref = legacy_csr(terms, 1, M)
        got = plan.to_csr()
        assert (ref != got).nnz == 0
        assert np.array_equal(ref.data, got.data)

    def test_zero_scalar_terms_dropped(self):
        M = 4
        terms = [(0, 0, 0, None, 1.0), (0, 1, 1, None, 0.0)]
        plan = RollPlan(terms, n_blocks=2, M=M)
        assert plan.n_terms == 1

    def test_cancelling_duplicates_dropped(self):
        M = 4
        terms = [
            (0, 0, 0, None, 1.0),
            (0, 1, 1, None, 0.5),
            (0, 1, 1, None, -0.5),
        ]
        plan = RollPlan(terms, n_blocks=2, M=M)
        assert plan.n_terms == 1

    def test_segments_trimmed_to_support(self):
        # A weight row with support [2, 6) must never produce a segment
        # touching weight indices outside it.
        M = 8
        q = np.zeros(M)
        q[2:6] = 0.25
        plan = RollPlan([(0, 1, 3, q, 1.0)], n_blocks=2, M=M)
        for segs in (plan.scatter, plan.gather):
            for _, _, qrow, _, a, b, xoff, woff in segs.rows():
                w_lo, w_hi = a + woff, b + woff
                assert 2 <= w_lo < w_hi <= 6

    def test_segment_order_is_csr_order(self):
        # For each output row, contributions must arrive in ascending
        # source-column order: sorted by (orow, irow, xoff).
        M = 16
        rng = np.random.default_rng(3)
        terms = [
            (s, d, int(sh), None, 0.1)
            for s, d, sh in zip(
                rng.integers(0, 3, 20), rng.integers(0, 3, 20),
                rng.integers(-5, 6, 20),
            )
        ]
        plan = RollPlan(terms, n_blocks=3, M=M)
        for segs in (plan.scatter, plan.gather):
            keys = [(r[0], r[1], r[6]) for r in segs.rows()]
            assert keys == sorted(keys)


class TestCSRArrays:
    def test_matches_scipy_canonical_form(self):
        rng = np.random.default_rng(11)
        n = 30
        nnz = 200
        rows = rng.integers(0, n, nnz).astype(np.int64)
        cols = rng.integers(0, n, nnz).astype(np.int64)
        vals = rng.normal(size=nnz)
        cs = CSRArrays(rows, cols, vals, n)
        ref = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        ref.sum_duplicates()
        assert np.array_equal(cs.indptr, ref.indptr)
        assert np.array_equal(cs.cols, ref.indices)
        # Duplicate runs are summed sequentially, matching scipy's
        # sum_duplicates bit for bit.
        assert np.array_equal(cs.vals, ref.data)


class TestBranchPlan:
    def test_drops_zero_weights_and_matches_scipy(self):
        rng = np.random.default_rng(5)
        n = 25
        w1 = rng.random(n)
        w1[::3] = 0.0
        w2 = 1.0 - w1
        d1 = rng.integers(0, n, n)
        d2 = rng.integers(0, n, n)
        plan = BranchPlan(n, [(w1, d1), (w2, d2)])
        live = int((w1 != 0).sum() + (w2 != 0).sum())
        assert plan.nnz <= live  # duplicates may merge further
        idx = np.arange(n)
        ref = sp.coo_matrix(
            (
                np.concatenate([w1[w1 != 0], w2[w2 != 0]]),
                (
                    np.concatenate([idx[w1 != 0], idx[w2 != 0]]),
                    np.concatenate([d1[w1 != 0], d2[w2 != 0]]),
                ),
            ),
            shape=(n, n),
        ).tocsr()
        ref.sum_duplicates()
        g = plan.gather
        assert np.array_equal(g.indptr, ref.indptr)
        assert np.array_equal(g.cols, ref.indices)
        assert np.array_equal(g.vals, ref.data)

    def test_scatter_is_transpose(self):
        rng = np.random.default_rng(6)
        n = 20
        w = np.full(n, 1.0)
        d = rng.integers(0, n, n)
        plan = BranchPlan(n, [(w, d)])
        s = plan.scatter
        ref = sp.csr_matrix((w, (d, np.arange(n))), shape=(n, n))
        ref.sum_duplicates()
        assert np.array_equal(s.indptr, ref.indptr)
        assert np.array_equal(s.cols, ref.indices)
        assert np.array_equal(s.vals, ref.data)
