"""Tests for CDRSpec (S21)."""

import pytest

from repro import CDRSpec
from repro.cdr.model import CDRChainModel
from repro.noise import DiscreteDistribution


class TestValidation:
    def test_default_is_valid(self):
        spec = CDRSpec()
        assert spec.n_phase_points == 256
        assert spec.counter_length == 8

    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("n_phase_points", 1, "n_phase_points"),
            ("n_clock_phases", 0, "n_clock_phases"),
            ("counter_length", 0, "counter_length"),
            ("transition_density", 0.0, "transition_density"),
            ("transition_density", 1.5, "transition_density"),
            ("max_run_length", 0, "max_run_length"),
            ("nw_std", -0.1, "nw_std"),
            ("nw_atoms", 0, "nw_atoms"),
            ("nr_max", 0.0, "nr_max"),
        ],
    )
    def test_field_validation(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            CDRSpec(**{field: value})

    def test_grid_divisibility(self):
        with pytest.raises(ValueError, match="multiple"):
            CDRSpec(n_phase_points=100, n_clock_phases=16)

    def test_mean_exceeding_max(self):
        with pytest.raises(ValueError, match="nr_mean"):
            CDRSpec(nr_max=0.001, nr_mean=0.01)

    def test_zero_sigma_rejected(self):
        with pytest.raises(ValueError, match="nw_std must be positive"):
            CDRSpec(nw_std=0.0)

    def test_zero_sigma_allowed_with_override(self):
        # nw_std is ignored for model building when an override is given,
        # so a degenerate sigma must not block a custom noise model.
        nw = DiscreteDistribution([-0.1, 0.1], [0.5, 0.5])
        spec = CDRSpec(nw_std=0.0, nw_override=nw)
        assert spec.nw_distribution() == nw

    @pytest.mark.parametrize(
        "kwargs,fragment",
        [
            # Each message names the offending value and says what to do.
            ({"counter_length": 0}, "got 0"),
            ({"nw_std": -0.5}, "got -0.5"),
            ({"nw_std": 0.0}, "nw_override"),
            ({"transition_density": 0.0}, "data transition"),
            ({"n_phase_points": 100, "n_clock_phases": 16},
             "n_phase_points=96"),
            ({"nr_max": -1.0}, "nr_override"),
            ({"nr_max": 0.001, "nr_mean": 0.01}, "nr_mean=0.01"),
        ],
    )
    def test_messages_are_actionable(self, kwargs, fragment):
        with pytest.raises(ValueError) as excinfo:
            CDRSpec(**kwargs)
        assert fragment in str(excinfo.value)

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(ValueError) as excinfo:
            CDRSpec(backend="bogus")
        message = str(excinfo.value)
        assert "bogus" in message
        assert "assembled" in message  # the valid choices are offered

    def test_frozen(self):
        spec = CDRSpec()
        with pytest.raises(Exception):
            spec.counter_length = 4


class TestDerived:
    def test_phase_step_units(self):
        spec = CDRSpec(n_phase_points=256, n_clock_phases=16)
        assert spec.phase_step_units == 16

    def test_grid(self):
        spec = CDRSpec(n_phase_points=128, n_clock_phases=16)
        assert spec.grid.n_points == 128

    def test_nw_distribution(self):
        spec = CDRSpec(nw_std=0.03, nw_atoms=9)
        d = spec.nw_distribution()
        assert d.n_atoms == 9
        assert d.std() == pytest.approx(0.03, rel=0.1)

    def test_nr_distribution_mean(self):
        spec = CDRSpec(nr_max=0.01, nr_mean=0.004)
        assert spec.nr_distribution().mean() == pytest.approx(0.004, abs=1e-12)

    def test_overrides(self):
        nw = DiscreteDistribution([-0.1, 0.1], [0.5, 0.5])
        nr = DiscreteDistribution.delta(0.0)
        spec = CDRSpec(nw_override=nw, nr_override=nr)
        assert spec.nw_distribution() == nw
        assert spec.nr_distribution() == nr

    def test_expected_state_count(self):
        spec = CDRSpec(
            n_phase_points=64, n_clock_phases=16, counter_length=4, max_run_length=2
        )
        assert spec.expected_state_count() == 2 * 7 * 64

    def test_build_model(self):
        spec = CDRSpec(n_phase_points=64, n_clock_phases=16, counter_length=2,
                       max_run_length=2)
        model = spec.build_model()
        assert isinstance(model, CDRChainModel)
        assert model.n_states == spec.expected_state_count()
        assert model.counter_length == 2

    def test_replace(self):
        spec = CDRSpec()
        other = spec.replace(counter_length=16)
        assert other.counter_length == 16
        assert other.nw_std == spec.nw_std
        assert spec.counter_length == 8  # original unchanged

    def test_describe(self):
        text = CDRSpec().describe()
        assert "COUNTER=8" in text
        assert "STDnw=0.02" in text
