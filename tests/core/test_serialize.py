"""Tests for JSON serialization of specs and analyses."""

import json
import math

import pytest

from repro import CDRSpec, analyze_cdr
from repro.core import (
    analysis_to_dict,
    analysis_to_json,
    spec_from_dict,
    spec_from_json,
    spec_to_dict,
    spec_to_json,
)
from repro.noise import DiscreteDistribution


def small_spec():
    return CDRSpec(
        n_phase_points=64, n_clock_phases=16, counter_length=2,
        max_run_length=2, nw_std=0.08, nw_atoms=7,
    )


class TestSpecRoundTrip:
    def test_dict_round_trip(self):
        spec = small_spec()
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_json_round_trip(self):
        spec = small_spec()
        text = spec_to_json(spec)
        json.loads(text)  # valid JSON
        assert spec_from_json(text) == spec

    def test_overrides_round_trip(self):
        nw = DiscreteDistribution([-0.1, 0.0, 0.1], [0.25, 0.5, 0.25])
        spec = small_spec().replace(nw_override=nw)
        restored = spec_from_dict(spec_to_dict(spec))
        assert restored.nw_override == nw

    def test_unknown_field_rejected(self):
        payload = spec_to_dict(small_spec())
        payload["bogus"] = 1
        with pytest.raises(ValueError, match="unknown spec fields"):
            spec_from_dict(payload)

    def test_partial_dict_uses_defaults(self):
        spec = spec_from_dict({"counter_length": 4})
        assert spec.counter_length == 4
        assert spec.n_phase_points == CDRSpec().n_phase_points


class TestAnalysisSerialization:
    @pytest.fixture(scope="class")
    def analysis(self):
        return analyze_cdr(small_spec(), solver="direct")

    def test_dict_fields(self, analysis):
        d = analysis_to_dict(analysis)
        assert d["n_states"] == analysis.n_states
        assert d["ber"] == analysis.ber
        assert d["solver"]["method"] == "direct"
        assert d["solver"]["converged"] is True
        assert "phase_error_pdf" not in d

    def test_json_valid(self, analysis):
        text = analysis_to_json(analysis)
        payload = json.loads(text)
        assert payload["ber"] >= 0.0

    def test_include_pdf(self, analysis):
        d = analysis_to_dict(analysis, include_pdf=True)
        pdf = d["phase_error_pdf"]
        assert len(pdf["values"]) == 64
        assert sum(pdf["probs"]) == pytest.approx(1.0, abs=1e-9)

    def test_spec_embedded_and_restorable(self, analysis):
        d = analysis_to_dict(analysis)
        assert spec_from_dict(d["spec"]) == analysis.spec

    def test_infinite_mtbf_becomes_null(self):
        quiet = analyze_cdr(
            small_spec().replace(nw_std=0.01, nr_max=0.001, nr_mean=0.0),
            solver="direct",
        )
        d = analysis_to_dict(quiet)
        v = d["mean_symbols_between_slips"]
        assert v is None or math.isfinite(v)
        json.dumps(d)  # must be strictly JSON-serializable


class TestCLIJson:
    def test_analyze_json_output(self, capsys):
        from repro.cli import main

        rc = main([
            "analyze", "--n-phase-points", "64", "--counter-length", "2",
            "--max-run-length", "2", "--nw-atoms", "7",
            "--solver", "direct", "--json",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert "ber" in payload
        assert payload["spec"]["counter_length"] == 2
