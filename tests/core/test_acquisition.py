"""Tests for lock-acquisition analysis."""

import numpy as np
import pytest

from repro import CDRSpec, analyze_acquisition, lock_probability_curve
from repro.cdr import simulate_cdr


def acquisition_spec():
    return CDRSpec(
        n_phase_points=64,
        n_clock_phases=16,
        counter_length=2,
        max_run_length=2,
        nw_std=0.05,
        nw_atoms=9,
        nr_max=0.016,
        nr_mean=0.002,
    )


@pytest.fixture(scope="module")
def model():
    return acquisition_spec().build_model()


@pytest.fixture(scope="module")
def acquisition(model):
    return analyze_acquisition(model, locked_threshold_ui=0.1)


class TestAcquisitionAnalysis:
    def test_shapes(self, model, acquisition):
        assert acquisition.mean_lock_time_by_phase.shape == (model.n_phase_points,)

    def test_locked_starts_are_instant(self, model, acquisition):
        for m in range(model.n_phase_points):
            if abs(model.grid.value_of(m)) <= 0.1:
                assert acquisition.mean_lock_time_by_phase[m] == 0.0

    def test_monotone_away_from_lock(self, model, acquisition):
        """Starting farther from the locked region cannot lock faster
        (within the positive-phase half, before the wrap shortcut)."""
        t = acquisition.mean_lock_time_by_phase
        phi = model.grid.values
        inside = np.flatnonzero((phi > 0.1) & (phi < 0.35))
        diffs = np.diff(t[inside])
        assert np.all(diffs > -1e-6)

    def test_worst_case_fields_consistent(self, model, acquisition):
        idx = model.grid.index_of(acquisition.worst_case_phase_ui)
        assert acquisition.mean_lock_time_by_phase[idx] == pytest.approx(
            acquisition.worst_case_symbols
        )
        assert acquisition.worst_case_symbols >= acquisition.mean_from_uniform

    def test_summary(self, acquisition):
        assert "worst-case" in acquisition.summary()

    def test_validation(self, model):
        with pytest.raises(ValueError, match="positive"):
            analyze_acquisition(model, locked_threshold_ui=0.0)
        with pytest.raises(ValueError, match="no grid points"):
            analyze_acquisition(model, locked_threshold_ui=1e-6)

    def test_monte_carlo_agreement(self, model, acquisition):
        """Simulated first-lock times match the mean first-passage answer."""
        spec = acquisition_spec()
        rng = np.random.default_rng(5)
        start_phase = 0.3
        m0 = model.grid.index_of(start_phase)
        predicted = acquisition.mean_lock_time_by_phase[m0]
        # Simulate many short acquisitions.
        locks = []
        for _ in range(300):
            # run a short sim and find the first symbol with |phi| <= 0.1
            res_trace = _first_lock_time(spec, model, m0, rng)
            locks.append(res_trace)
        assert np.mean(locks) == pytest.approx(predicted, rel=0.25)


def _first_lock_time(spec, model, m0, rng, limit=2000):
    """Minimal inline simulator tracking the first lock entry."""
    grid = model.grid
    nw = spec.nw_distribution()
    nr_steps = model.nr_steps
    src = spec.data_source()
    N = spec.counter_length
    g = spec.phase_step_units
    M = grid.n_points
    d_path = src.chain.simulate(limit, rng, src.initial_state)
    trans = np.array([src.symbol(i) for i in range(src.n_states)])[d_path]
    w = nw.sample(rng, size=limit)
    r = nr_steps.sample(rng, size=limit).astype(int)
    m, c = m0, 0
    for k in range(limit):
        phi = grid.value_of(m)
        if abs(phi) <= 0.1:
            return k
        o = 0
        noisy = phi + w[k]
        if trans[k]:
            o = 1 if noisy > 0 else (-1 if noisy < 0 else 0)
        v = c + o
        if v >= N:
            direction, c = 1, 0
        elif v <= -N:
            direction, c = -1, 0
        else:
            direction, c = 0, v
        m = (m - g * direction + r[k]) % M
    return limit


class TestLockProbabilityCurve:
    def test_curve_properties(self, model):
        curve = lock_probability_curve(model, 300, start_phase_ui=0.4)
        assert curve.shape == (301,)
        assert curve[0] == 0.0  # starts outside the region
        assert np.all((curve >= -1e-12) & (curve <= 1.0 + 1e-12))
        # eventually ~stationary lock probability, which is high
        assert curve[-1] > 0.9

    def test_locked_start_begins_at_one(self, model):
        curve = lock_probability_curve(model, 10, start_phase_ui=0.0)
        assert curve[0] == 1.0

    def test_default_start_is_worst_case(self, model):
        curve = lock_probability_curve(model, 5)
        assert curve[0] == 0.0

    def test_negative_steps_rejected(self, model):
        with pytest.raises(ValueError):
            lock_probability_curve(model, -1)
