"""Tests for the end-to-end analyzer (S21) and the sweep utilities (S22)."""

import numpy as np
import pytest

from repro import (
    CDRSpec,
    analyze_cdr,
    analyze_model,
    optimal_counter_length,
    sweep_counter_length,
    sweep_parameter,
)
from repro.core.analyzer import CDRAnalysis


def small_spec(**overrides):
    params = dict(
        n_phase_points=64,
        n_clock_phases=16,
        counter_length=3,
        max_run_length=2,
        nw_std=0.08,
        nw_atoms=9,
        nr_max=0.016,
        nr_mean=0.004,
    )
    params.update(overrides)
    return CDRSpec(**params)


@pytest.fixture(scope="module")
def analysis():
    return analyze_cdr(small_spec(), solver="direct")


class TestAnalyzeCDR:
    def test_returns_analysis(self, analysis):
        assert isinstance(analysis, CDRAnalysis)
        assert analysis.n_states == small_spec().expected_state_count()

    def test_stationary_is_distribution(self, analysis):
        eta = analysis.stationary
        assert eta.sum() == pytest.approx(1.0, abs=1e-9)
        assert eta.min() >= -1e-12

    def test_measures_populated(self, analysis):
        assert 0.0 <= analysis.ber <= 1.0
        assert 0.0 <= analysis.ber_discrete <= 1.0
        assert analysis.slip_rate >= 0.0
        assert analysis.mean_symbols_between_slips > 1.0
        assert 0.0 < analysis.phase_rms < 0.5

    def test_timings(self, analysis):
        assert analysis.build_seconds > 0.0
        assert analysis.solve_seconds > 0.0

    def test_stage_seconds(self, analysis):
        stages = analysis.stage_seconds
        assert stages["cdr.build_tpm"] > 0.0
        assert stages["markov.solve"] > 0.0

    def test_trace_spans_recorded(self, analysis):
        assert analysis.trace is not None
        names = [s.name for s in analysis.trace.iter_spans()]
        assert "cdr.analyze" in names
        assert "cdr.build_tpm" in names
        assert "markov.solve" in names
        assert "cdr.measures" in names

    def test_solver_recording_attached(self, analysis):
        rec = analysis.solver_recording
        assert rec is not None
        trace = rec.to_trace()
        assert trace["iterations"] == analysis.solver_result.iterations
        assert trace["method"] == analysis.solver_result.method

    def test_legacy_timing_properties_removed(self, analysis):
        # form_time/solve_time were deprecated aliases of build_seconds /
        # solve_seconds; both are gone now.
        assert not hasattr(analysis, "form_time")
        assert not hasattr(analysis, "solve_time")
        assert analysis.build_seconds > 0.0
        assert analysis.solve_seconds > 0.0

    def test_report_format(self, analysis):
        report = analysis.report()
        assert "COUNTER: 3" in report
        assert "STDnw: 8.0e-02" in report
        assert "BER:" in report
        assert "Size: " in report
        assert "Matrixformtime:" in report
        assert "Solvetime:" in report

    def test_pdf_accessors(self, analysis):
        vals, probs = analysis.phase_error_pdf()
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)
        svals, sprobs = analysis.sampled_phase_pdf()
        assert sprobs.sum() == pytest.approx(1.0, abs=1e-9)

    def test_solvers_agree(self):
        spec = small_spec()
        direct = analyze_cdr(spec, solver="direct")
        mg = analyze_cdr(spec, solver="multigrid", tol=1e-11)
        assert mg.ber == pytest.approx(direct.ber, rel=1e-4)
        assert mg.slip_rate == pytest.approx(direct.slip_rate, rel=1e-4)

    def test_auto_solver_small_uses_direct(self):
        a = analyze_cdr(small_spec(), solver="auto")
        assert a.solver_result.method == "direct"

    def test_auto_solver_large_uses_multigrid(self):
        spec = small_spec(n_phase_points=1024, counter_length=4)
        a = analyze_cdr(spec, solver="auto", tol=1e-9)
        assert a.solver_result.method == "multigrid"
        assert a.solver_result.converged

    def test_analyze_model_without_spec(self):
        model = small_spec().build_model()
        a = analyze_model(model, solver="direct")
        assert a.spec is None
        assert "COUNTER: 3" in a.report()


class TestPaperShapeClaims:
    """The qualitative claims of Figures 4 and 5, as assertions."""

    def test_fig4_noise_increases_ber_by_orders_of_magnitude(self):
        quiet = analyze_cdr(small_spec(nw_std=0.02), solver="direct")
        loud = analyze_cdr(small_spec(nw_std=0.2), solver="direct")
        assert loud.ber > quiet.ber * 1e3

    def test_fig5_counter_length_has_interior_optimum(self):
        """Both noise sources matter -> BER is U-shaped in counter length.

        A coarse phase-select step (few clock phases) makes the bang-bang
        dither of a short counter costly, while the n_r drift punishes a
        long (slow) counter -- the paper's Figure 5 tradeoff.
        """
        spec = small_spec(
            n_clock_phases=8,  # coarse step: dither hurts short counters
            nw_std=0.1,
            nr_max=0.016,      # drift hurts long counters
            nr_mean=0.008,
            nw_atoms=11,
        )
        records = sweep_counter_length(spec, [1, 4, 32], solver="direct")
        bers = [r["ber"] for r in records]
        assert bers[1] < bers[0]
        assert bers[1] < bers[2]

    def test_slips_increase_with_drift(self):
        low = analyze_cdr(small_spec(nr_mean=0.0), solver="direct")
        high = analyze_cdr(small_spec(nr_mean=0.012), solver="direct")
        assert high.slip_rate >= low.slip_rate

    def test_longer_transition_free_runs_hurt(self):
        """The 'longest possible bit sequence with no transitions' spec:
        during a run the detector is blind and drift accumulates
        uncorrected, so BER grows with the run-length limit at fixed
        transition density."""
        short = analyze_cdr(
            small_spec(max_run_length=1, transition_density=0.99,
                       nr_mean=0.012, nr_max=0.016),
            solver="direct",
        )
        long = analyze_cdr(
            small_spec(max_run_length=8, transition_density=0.3,
                       nr_mean=0.012, nr_max=0.016),
            solver="direct",
        )
        assert long.ber > short.ber
        assert long.slip_rate >= short.slip_rate


class TestSweeps:
    def test_sweep_parameter_records(self):
        records = sweep_parameter(
            small_spec(), "nw_std", [0.05, 0.1], solver="direct"
        )
        assert len(records) == 2
        assert records[0]["nw_std"] == 0.05
        for rec in records:
            for key in ("ber", "slip_rate", "n_states", "iterations",
                        "form_time_s", "solve_time_s"):
                assert key in rec

    def test_sweep_ber_monotone_in_nw(self):
        records = sweep_parameter(
            small_spec(), "nw_std", [0.04, 0.08, 0.16], solver="direct"
        )
        bers = [r["ber"] for r in records]
        assert bers[0] < bers[1] < bers[2]

    def test_optimal_counter_length(self):
        spec = small_spec(
            n_clock_phases=8, nw_std=0.1, nr_max=0.016, nr_mean=0.008,
            nw_atoms=11,
        )
        best = optimal_counter_length(spec, [1, 4, 32], solver="direct")
        assert best["counter_length"] == 4

    def test_optimal_requires_values(self):
        with pytest.raises(ValueError):
            optimal_counter_length(small_spec(), [], solver="direct")
