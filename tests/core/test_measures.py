"""Tests for the performance measures (S20)."""

import math

import numpy as np
import pytest

from repro.cdr import PhaseGrid, build_cdr_chain
from repro.core.measures import (
    bit_error_rate,
    bit_error_rate_discrete,
    cycle_slip_rate,
    mean_symbols_between_slips,
    phase_error_pdf,
    phase_statistics,
    recovered_clock_jitter,
    sampled_phase_pdf,
)
from repro.markov import solve_direct
from repro.noise import DiscreteDistribution, eye_opening_noise, sonet_drift_noise


@pytest.fixture(scope="module")
def solved_model():
    grid = PhaseGrid(64)
    model = build_cdr_chain(
        grid=grid,
        nw=eye_opening_noise(0.08, n_atoms=9),
        nr=sonet_drift_noise(
            max_ui=grid.step, mean_ui=0.2 * grid.step, grid_step=grid.step
        ),
        counter_length=3,
        phase_step_units=4,
    )
    eta = solve_direct(model.chain.P).distribution
    return model, eta


class TestPDFs:
    def test_phase_error_pdf_normalized(self, solved_model):
        model, eta = solved_model
        values, probs = phase_error_pdf(model, eta)
        assert values.shape == probs.shape == (64,)
        assert probs.sum() == pytest.approx(1.0, abs=1e-10)
        assert probs.min() >= -1e-12

    def test_sampled_phase_pdf_normalized_and_wider(self, solved_model):
        model, eta = solved_model
        _, phi_probs = phase_error_pdf(model, eta)
        svals, sprobs = sampled_phase_pdf(model, eta)
        assert sprobs.sum() == pytest.approx(1.0, abs=1e-10)
        assert np.all(np.diff(svals) >= 0)
        # convolving with n_w widens the support
        phi_vals, _ = phase_error_pdf(model, eta)
        assert svals.min() < phi_vals.min()
        assert svals.max() > phi_vals.max()

    def test_sampled_pdf_variance_adds(self, solved_model):
        model, eta = solved_model
        phi_vals, phi_probs = phase_error_pdf(model, eta)
        svals, sprobs = sampled_phase_pdf(model, eta)
        var_phi = np.dot(phi_vals**2, phi_probs) - np.dot(phi_vals, phi_probs) ** 2
        var_s = np.dot(svals**2, sprobs) - np.dot(svals, sprobs) ** 2
        assert var_s == pytest.approx(var_phi + model.nw.var(), rel=1e-9)


class TestBER:
    def test_discrete_equals_tail_mass_of_sampled_pdf(self, solved_model):
        model, eta = solved_model
        svals, sprobs = sampled_phase_pdf(model, eta)
        tail = sprobs[np.abs(svals) > 0.5].sum()
        assert bit_error_rate_discrete(model, eta) == pytest.approx(
            float(tail), rel=1e-10, abs=1e-15
        )

    def test_gaussian_close_to_discrete_when_tails_visible(self, solved_model):
        # With only 9 n_w atoms the discrete tail is sparsely resolved;
        # order-of-magnitude agreement is the honest expectation here (the
        # convergence test below tightens it).
        model, eta = solved_model
        d = bit_error_rate_discrete(model, eta)
        g = bit_error_rate(model, eta)
        assert d > 0
        assert 0.1 < d / g < 10.0

    def test_discrete_converges_to_gaussian_with_finer_atoms(self):
        from repro.cdr import build_cdr_chain

        grid = PhaseGrid(64)
        nr = sonet_drift_noise(
            max_ui=grid.step, mean_ui=0.2 * grid.step, grid_step=grid.step
        )
        ratios = []
        for atoms, span in [(9, 4.0), (41, 6.0)]:
            model = build_cdr_chain(
                grid=grid,
                nw=eye_opening_noise(0.08, n_atoms=atoms, n_sigmas=span),
                nr=nr,
                counter_length=3,
                phase_step_units=4,
            )
            eta = solve_direct(model.chain.P).distribution
            ratios.append(
                bit_error_rate_discrete(model, eta) / bit_error_rate(model, eta)
            )
        assert abs(ratios[1] - 1.0) < abs(ratios[0] - 1.0)
        assert abs(ratios[1] - 1.0) < 0.25

    def test_gaussian_handles_zero_sigma(self, solved_model):
        model, eta = solved_model
        ber = bit_error_rate(model, eta, nw_std=0.0)
        # no noise: errors only from stationary mass beyond 1/2 UI, which
        # cannot exist on the grid
        assert ber == 0.0

    def test_threshold_monotonicity(self, solved_model):
        model, eta = solved_model
        loose = bit_error_rate(model, eta, threshold_ui=0.4)
        tight = bit_error_rate(model, eta, threshold_ui=0.5)
        assert loose >= tight

    def test_more_noise_more_errors(self, solved_model):
        model, eta = solved_model
        small = bit_error_rate(model, eta, nw_std=0.05)
        large = bit_error_rate(model, eta, nw_std=0.15)
        assert large > small


class TestSlips:
    def test_rate_and_mtbs_consistent(self, solved_model):
        model, eta = solved_model
        rate = cycle_slip_rate(model, eta)
        mtbs = mean_symbols_between_slips(model, eta)
        assert rate > 0
        assert mtbs == pytest.approx(1.0 / rate)

    def test_no_slip_matrix_gives_inf(self, solved_model):
        import scipy.sparse as sp
        import dataclasses

        model, eta = solved_model
        quiet = dataclasses.replace(
            model, slip_matrix=sp.csr_matrix((model.n_states, model.n_states))
        )
        assert mean_symbols_between_slips(quiet, eta) == math.inf


class TestPhaseStatistics:
    def test_fields_consistent(self, solved_model):
        model, eta = solved_model
        stats = phase_statistics(model, eta)
        assert set(stats) == {"mean_ui", "rms_ui", "std_ui", "peak_ui"}
        assert stats["rms_ui"] ** 2 == pytest.approx(
            stats["std_ui"] ** 2 + stats["mean_ui"] ** 2, rel=1e-9
        )
        assert 0 < stats["peak_ui"] < 0.5

    def test_positive_drift_positive_mean(self, solved_model):
        model, eta = solved_model
        assert phase_statistics(model, eta)["mean_ui"] > 0


class TestAccumulatedJitter:
    def test_matches_dense_clt_variance(self, solved_model):
        """The sparse truncated-series rate equals the exact dense
        group-inverse computation (the model is small enough for both)."""
        from repro.core.measures import accumulated_jitter_variance_rate
        from repro.markov.fundamental import time_average_variance

        model, eta = solved_model
        sparse_rate = accumulated_jitter_variance_rate(model, eta, max_lag=2048)
        dense_rate = time_average_variance(
            model.chain, model.phase_values_per_state(), eta
        )
        assert sparse_rate == pytest.approx(dense_rate, rel=0.02)

    def test_nonnegative(self, solved_model):
        from repro.core.measures import accumulated_jitter_variance_rate

        model, eta = solved_model
        assert accumulated_jitter_variance_rate(model, eta, max_lag=64) >= 0.0


class TestRecoveredClockJitter:
    def test_rms_matches_phase_std(self, solved_model):
        model, eta = solved_model
        jitter = recovered_clock_jitter(model, eta, max_lag=32)
        stats = phase_statistics(model, eta)
        assert jitter["rms_ui"] == pytest.approx(stats["std_ui"], rel=1e-6)

    def test_correlation_length_positive(self, solved_model):
        model, eta = solved_model
        jitter = recovered_clock_jitter(model, eta, max_lag=256)
        # the loop filter makes the phase error strongly correlated over
        # at least a couple of symbols
        assert jitter["correlation_symbols"] >= 1.0
