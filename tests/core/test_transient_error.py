"""Tests for the transient (acquisition-phase) error rate."""

import numpy as np
import pytest

from repro import CDRSpec
from repro.core import bit_error_rate_discrete
from repro.core.acquisition import transient_error_rate
from repro.markov import solve_direct


@pytest.fixture(scope="module")
def model():
    return CDRSpec(
        n_phase_points=64,
        n_clock_phases=16,
        counter_length=2,
        max_run_length=2,
        nw_std=0.08,
        nw_atoms=9,
        nr_max=0.016,
        nr_mean=0.002,
    ).build_model()


class TestTransientErrorRate:
    def test_starts_high_from_worst_offset(self, model):
        rate = transient_error_rate(model, 200, start_phase_ui=-0.49)
        # Half a UI off: nearly every decision is wrong at first...
        assert rate[0] > 0.3
        # ...then the loop pulls in and the error rate collapses.
        assert rate[-1] < rate[0] / 10.0

    def test_converges_to_stationary_ber(self, model):
        rate = transient_error_rate(model, 600, start_phase_ui=-0.49)
        eta = solve_direct(model.chain.P).distribution
        stationary_ber = bit_error_rate_discrete(model, eta)
        assert rate[-1] == pytest.approx(stationary_ber, rel=0.05, abs=1e-12)

    def test_locked_start_stays_low(self, model):
        rate = transient_error_rate(model, 100, start_phase_ui=0.0)
        eta = solve_direct(model.chain.P).distribution
        stationary_ber = bit_error_rate_discrete(model, eta)
        assert rate.max() < max(100 * stationary_ber, 1e-3)

    def test_monotone_decay_from_worst_case(self, model):
        rate = transient_error_rate(model, 150, start_phase_ui=-0.49)
        # allow small non-monotonic wiggle but require overall decay
        assert rate[50] < rate[0]
        assert rate[150] <= rate[50] + 1e-6

    def test_validation(self, model):
        with pytest.raises(ValueError):
            transient_error_rate(model, -1)

    def test_shape(self, model):
        rate = transient_error_rate(model, 25)
        assert rate.shape == (26,)
        assert np.all((rate >= -1e-12) & (rate <= 1.0 + 1e-12))
