"""Tests for the design-margin sensitivity layer."""

import pytest

from repro import CDRSpec
from repro.core import measure_sensitivity, sensitivity_table


def spec():
    return CDRSpec(
        n_phase_points=64,
        n_clock_phases=16,
        counter_length=2,
        max_run_length=2,
        nw_std=0.08,
        nw_atoms=9,
        nr_max=0.016,
        nr_mean=0.004,
    )


class TestMeasureSensitivity:
    def test_ber_increases_with_nw(self):
        rep = measure_sensitivity(spec(), "nw_std", solver="direct")
        assert rep.measure == "ber"
        assert rep.derivative > 0.0
        assert rep.log10_derivative > 0.0
        assert "d log10(ber)" in rep.summary()

    def test_ber_increases_with_drift(self):
        rep = measure_sensitivity(spec(), "nr_mean", solver="direct")
        assert rep.derivative > 0.0

    def test_slip_rate_measure(self):
        rep = measure_sensitivity(
            spec(), "nr_mean", measure="slip_rate", solver="direct"
        )
        assert rep.derivative > 0.0

    def test_log_derivative_magnitude_sane(self):
        # Around this design point BER moves multiple decades per 0.1 UI
        # of extra eye jitter.
        rep = measure_sensitivity(spec(), "nw_std", solver="direct")
        assert 1.0 < rep.log10_derivative < 1000.0

    def test_rejects_discrete_parameter(self):
        with pytest.raises(ValueError, match="continuous"):
            measure_sensitivity(spec(), "counter_length", solver="direct")

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError, match="rel_step"):
            measure_sensitivity(spec(), "nw_std", rel_step=0.0, solver="direct")

    def test_rejects_non_float_measure(self):
        with pytest.raises(ValueError, match="float attribute"):
            measure_sensitivity(spec(), "nw_std", measure="phase_stats",
                                solver="direct")


class TestSensitivityTable:
    def test_default_parameters(self):
        records = sensitivity_table(spec(), solver="direct")
        assert [r["parameter"] for r in records] == ["nw_std", "nr_mean", "nr_max"]
        for rec in records:
            assert "dlog10(ber)/dx" in rec
            assert rec["ber"] >= 0.0

    def test_nw_dominates_at_this_point(self):
        """At a jitter-limited design point the BER is far more sensitive
        (per relative change) to nw_std than to nr_max."""
        records = sensitivity_table(spec(), solver="direct")
        by_param = {r["parameter"]: r for r in records}
        rel_nw = by_param["nw_std"]["dlog10(ber)/dx"] * spec().nw_std
        rel_nr = abs(by_param["nr_max"]["dlog10(ber)/dx"]) * spec().nr_max
        assert rel_nw > rel_nr
