"""Tests for the plain-text reporting helpers."""

import numpy as np

from repro.core.reporting import format_pdf_ascii, format_record, format_table


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_content(self):
        records = [
            {"counter": 4, "ber": 1.25e-5},
            {"counter": 8, "ber": 3.5e-7},
        ]
        out = format_table(records)
        lines = out.splitlines()
        assert lines[0].startswith("counter")
        assert "ber" in lines[0]
        assert len(lines) == 4  # header, rule, 2 rows
        assert "1.25e-05" in out

    def test_column_selection(self):
        records = [{"a": 1, "b": 2}]
        out = format_table(records, columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_missing_keys_blank(self):
        out = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in out


class TestFormatPDF:
    def test_renders_histogram(self):
        values = np.linspace(-0.5, 0.5, 101)
        probs = np.exp(-(values ** 2) / 0.02)
        probs /= probs.sum()
        out = format_pdf_ascii(values, probs, n_bins=40, height=8, title="phi")
        lines = out.splitlines()
        assert lines[0] == "phi"
        assert len(lines) == 1 + 8 + 2
        assert "#" in out
        assert "UI" in lines[-1]

    def test_degenerate_support(self):
        out = format_pdf_ascii(np.array([0.0]), np.array([1.0]), n_bins=10, height=4)
        assert "#" in out


class TestFormatRecord:
    def test_basic(self):
        out = format_record({"ber": 1e-9, "size": 100})
        assert "ber: 1e-09" in out
        assert "size: 100" in out
