"""Tests for the plain-text reporting helpers."""

import numpy as np

from repro.core.reporting import format_pdf_ascii, format_record, format_table


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_content(self):
        records = [
            {"counter": 4, "ber": 1.25e-5},
            {"counter": 8, "ber": 3.5e-7},
        ]
        out = format_table(records)
        lines = out.splitlines()
        assert lines[0].startswith("counter")
        assert "ber" in lines[0]
        assert len(lines) == 4  # header, rule, 2 rows
        assert "1.25e-05" in out

    def test_column_selection(self):
        records = [{"a": 1, "b": 2}]
        out = format_table(records, columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_missing_keys_blank(self):
        out = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in out

    def test_empty_records(self):
        assert format_table([{}, {}]) == "(no columns)"

    def test_ragged_records_union_columns(self):
        out = format_table([{"a": 1}, {"b": 2}])
        header = out.splitlines()[0]
        assert "a" in header and "b" in header
        assert "2" in out

    def test_nonfinite_floats_render(self):
        out = format_table([{"x": float("nan"), "y": float("inf")}])
        assert "nan" in out
        assert "inf" in out


class TestFormatPDF:
    def test_renders_histogram(self):
        values = np.linspace(-0.5, 0.5, 101)
        probs = np.exp(-(values ** 2) / 0.02)
        probs /= probs.sum()
        out = format_pdf_ascii(values, probs, n_bins=40, height=8, title="phi")
        lines = out.splitlines()
        assert lines[0] == "phi"
        assert len(lines) == 1 + 8 + 2
        assert "#" in out
        assert "UI" in lines[-1]

    def test_degenerate_support(self):
        out = format_pdf_ascii(np.array([0.0]), np.array([1.0]), n_bins=10, height=4)
        assert "#" in out

    def test_empty_input(self):
        out = format_pdf_ascii(np.array([]), np.array([]), title="phi")
        assert out == "phi\n(no finite probability mass)"

    def test_all_nonfinite_mass(self):
        values = np.array([np.nan, np.inf])
        probs = np.array([0.5, 0.5])
        out = format_pdf_ascii(values, probs)
        assert "(no finite probability mass)" in out

    def test_nonfinite_atoms_dropped(self):
        values = np.array([-0.1, 0.0, 0.1, np.nan, np.inf])
        probs = np.array([0.25, 0.5, 0.25, np.nan, 1.0])
        out = format_pdf_ascii(values, probs, n_bins=10, height=4)
        assert "#" in out
        assert "-0.100" in out and "+0.100" in out

    def test_shape_mismatch_rejected(self):
        with np.testing.assert_raises(ValueError):
            format_pdf_ascii(np.zeros(3), np.zeros(2))


class TestFormatRecord:
    def test_basic(self):
        out = format_record({"ber": 1e-9, "size": 100})
        assert "ber: 1e-09" in out
        assert "size: 100" in out

    def test_empty(self):
        assert format_record({}) == "(empty record)"

    def test_nonfinite_floats(self):
        out = format_record({"a": float("nan"), "b": float("-inf")})
        assert "a: nan" in out
        assert "b: -inf" in out
