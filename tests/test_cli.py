"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = [
    "--n-phase-points", "64",
    "--n-clock-phases", "16",
    "--counter-length", "2",
    "--max-run-length", "2",
    "--nw-std", "0.08",
    "--nw-atoms", "7",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze"])
        assert args.command == "analyze"
        assert args.counter_length == 8
        assert args.solver == "auto"

    def test_spec_overrides(self):
        args = build_parser().parse_args(["analyze", "--counter-length", "4"])
        assert args.counter_length == 4


class TestAnalyzeCommand:
    def test_runs_and_reports(self, capsys):
        rc = main(["analyze", *FAST, "--solver", "direct"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "COUNTER: 2" in out
        assert "BER (Gaussian tail)" in out
        assert "mean symbols between slips" in out

    def test_plot_flag(self, capsys):
        rc = main(["analyze", *FAST, "--solver", "direct", "--plot"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "phase error PDF" in out
        assert "#" in out

    def test_invalid_spec_reports_error(self, capsys):
        rc = main(["analyze", "--counter-length", "0"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "error:" in err

    def test_unknown_backend_reports_error(self, capsys):
        rc = main(["analyze", *FAST, "--backend", "bogus"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "unknown backend" in err

    def test_capability_error_reports_cleanly(self, capsys, monkeypatch):
        # A csr-only solver on an operator that cannot materialize must
        # exit 1 with an `error:` line, not a traceback.
        from repro.cdr.operator import CDRTransitionOperator
        from repro.markov import OperatorCapabilityError

        def boom(self):
            raise OperatorCapabilityError("cannot materialize; matrix-free")

        monkeypatch.setattr(CDRTransitionOperator, "to_csr", boom)
        rc = main(["analyze", *FAST, "--backend", "matrix-free",
                   "--solver", "direct"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "error: cannot materialize" in err

    def test_backend_flag_matrix_free(self, capsys):
        rc = main(["analyze", *FAST, "--backend", "matrix-free",
                   "--solver", "multigrid"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "BER (Gaussian tail)" in out

    def test_solvers_listing(self, capsys):
        rc = main(["solvers"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "multigrid" in out and "matrix-free" in out
        assert "assembled" in out and "kronecker" in out

    def test_trace_flag_writes_valid_json(self, capsys, tmp_path):
        from repro.markov.monitor import TRACE_SCHEMA, load_trace

        path = tmp_path / "trace.json"
        rc = main(["analyze", *FAST, "--solver", "gauss-seidel",
                   "--trace", str(path)])
        captured = capsys.readouterr()
        assert rc == 0
        assert f"solver trace written to {path}" in captured.err
        trace = load_trace(str(path))
        assert trace["schema"] == TRACE_SCHEMA
        assert trace["method"] == "gauss-seidel"
        assert trace["converged"] is True
        assert trace["iterations"] == len(trace["events"]) > 1
        assert trace["events"][-1]["residual"] == trace["residual"]

    def test_trace_with_multigrid_has_level_events(self, tmp_path):
        path = tmp_path / "mg.json"
        rc = main(["analyze", *FAST, "--solver", "multigrid",
                   "--trace", str(path)])
        assert rc == 0
        from repro.markov.monitor import load_trace

        trace = load_trace(str(path))
        assert trace["method"].startswith("multigrid")
        assert len(trace["vcycle_events"]) >= 1


class TestSweepCommand:
    def test_counter_sweep(self, capsys):
        rc = main([
            "sweep", *FAST, "--solver", "direct",
            "--parameter", "counter_length", "--values", "1,2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "counter_length" in out
        assert "ber" in out
        assert len(out.strip().splitlines()) >= 4

    def test_bad_values(self, capsys):
        rc = main([
            "sweep", *FAST, "--parameter", "counter_length",
            "--values", "1,abc",
        ])
        assert rc == 2
        assert "bad --values" in capsys.readouterr().err

    def test_empty_values(self, capsys):
        rc = main([
            "sweep", *FAST, "--parameter", "counter_length", "--values", ",",
        ])
        assert rc == 2

    def test_unknown_parameter_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--parameter", "bogus", "--values", "1"]
            )


class TestAcquireCommand:
    def test_runs(self, capsys):
        rc = main(["acquire", *FAST])
        out = capsys.readouterr().out
        assert rc == 0
        assert "worst-case" in out

    def test_curve(self, capsys):
        rc = main(["acquire", *FAST, "--curve-symbols", "64"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "P(locked at symbol" in out


class TestMetricsFlag:
    def test_analyze_writes_valid_manifest(self, capsys, tmp_path):
        from repro.obs import RUN_TRACE_SCHEMA, load_run_manifest

        path = tmp_path / "run.json"
        rc = main(["analyze", *FAST, "--solver", "direct",
                   "--metrics", str(path)])
        captured = capsys.readouterr()
        assert rc == 0
        assert f"run manifest written to {path}" in captured.err
        m = load_run_manifest(str(path))
        assert m["schema"] == RUN_TRACE_SCHEMA
        assert m["kind"] == "analysis"
        roots = {s["name"] for s in m["spans"]}
        assert "cdr.analyze" in roots
        assert m["solver_trace"]["method"] == "direct"
        assert "repro_analyses_total" in m["metrics"]["snapshot"]

    def test_sweep_writes_manifest(self, tmp_path):
        from repro.obs import load_run_manifest

        path = tmp_path / "sweep.json"
        rc = main(["sweep", *FAST, "--solver", "direct",
                   "--parameter", "counter_length", "--values", "1,2",
                   "--metrics", str(path)])
        assert rc == 0
        m = load_run_manifest(str(path))
        assert m["kind"] == "sweep"
        assert len(m["results"]["records"]) == 2
        assert any(s["name"] == "cdr.sweep" for s in m["spans"])

    def test_acquire_writes_manifest(self, tmp_path):
        from repro.obs import load_run_manifest

        path = tmp_path / "acq.json"
        rc = main(["acquire", *FAST, "--metrics", str(path)])
        assert rc == 0
        m = load_run_manifest(str(path))
        assert m["kind"] == "acquire"
        assert m["results"]["worst_case_symbols"] > 0


class TestStatsCommand:
    def test_pretty_prints_manifest(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        assert main(["analyze", *FAST, "--solver", "direct",
                     "--metrics", str(path)]) == 0
        capsys.readouterr()
        rc = main(["stats", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro.run-trace/1" in out
        assert "cdr.build_tpm" in out
        assert "markov.solve" in out
        assert "metrics (" in out

    def test_prometheus_dump(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        assert main(["analyze", *FAST, "--solver", "direct",
                     "--metrics", str(path)]) == 0
        capsys.readouterr()
        rc = main(["stats", str(path), "--prometheus"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "# TYPE repro_analyses_total counter" in out

    def test_missing_file_exits_1(self, capsys, tmp_path):
        rc = main(["stats", str(tmp_path / "nope.json")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_wrong_schema_exits_1(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "not-a-run-trace"}')
        rc = main(["stats", str(path)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestElasticSweepFlags:
    """--jobs/--point-timeout/--max-retries and faults --suite plumbing."""

    def test_jobs_flag_parses_with_defaults(self):
        args = build_parser().parse_args([
            "sweep", "--parameter", "counter_length", "--values", "1,2",
        ])
        assert args.jobs is None
        assert args.point_timeout is None
        assert args.max_retries == 2

    def test_parallel_sweep_runs_and_reports_executor(self, capsys, tmp_path):
        from repro.obs import load_run_manifest

        path = tmp_path / "sweep.json"
        rc = main(["sweep", *FAST, "--solver", "direct",
                   "--parameter", "counter_length", "--values", "1,2",
                   "--jobs", "2", "--metrics", str(path)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "2 jobs (pool)" in captured.err
        m = load_run_manifest(str(path))
        stats = m["results"]["exec_stats"]
        assert stats["jobs"] == 2
        assert stats["completed"] == 2

    def test_jobs_must_be_positive(self, capsys):
        rc = main(["sweep", *FAST, "--parameter", "counter_length",
                   "--values", "1,2", "--jobs", "0"])
        assert rc == 2
        assert "--jobs" in capsys.readouterr().err

    def test_point_timeout_requires_jobs(self, capsys):
        rc = main(["sweep", *FAST, "--parameter", "counter_length",
                   "--values", "1,2", "--point-timeout", "5"])
        assert rc == 2
        assert "--point-timeout" in capsys.readouterr().err

    def test_faults_suite_flag(self):
        args = build_parser().parse_args(["faults", "--suite", "workers"])
        assert args.suite == "workers"
        assert build_parser().parse_args(["faults"]).suite == "core"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--suite", "bogus"])
